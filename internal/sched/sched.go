// Package sched implements the SLURM-style batch scheduler ported to Monte
// Cimone (Section IV-A of the paper lists SLURM among the essential
// production services brought up on the cluster).
//
// The scheduler manages one partition of named nodes, accepts batch jobs
// with node counts and wall-time limits, and reacts to node failures (the
// thermal halt of node 7 in the paper surfaces as a NODE_FAIL job state).
// sinfo/squeue/sacct-style views expose the state. All timing is driven by
// the shared discrete-event engine.
//
// Scheduling decisions are delegated to a pluggable Policy (see policy.go):
// the default EASY policy reproduces the production FIFO+EASY-backfill
// configuration, and FIFO, shortest-job-first and best-fit packing
// variants ship alongside it. The hot paths are indexed — an incrementally
// maintained free-node set and a release heap — so synthetic partitions far
// beyond the paper's eight nodes schedule without O(nodes) rescans per
// decision.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/workload"
)

// JobState follows SLURM's job life cycle.
type JobState string

// Job states (a subset of SLURM's).
const (
	StatePending   JobState = "PENDING"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateTimeout   JobState = "TIMEOUT"
	StateCancelled JobState = "CANCELLED"
	StateNodeFail  JobState = "NODE_FAIL"
)

// NodeState follows sinfo's node states.
type NodeState string

// Node states.
const (
	NodeIdle  NodeState = "idle"
	NodeAlloc NodeState = "alloc"
	NodeDown  NodeState = "down"
)

// JobSpec describes a batch submission.
type JobSpec struct {
	// Name is the job name (sbatch -J).
	Name string
	// User is the submitting user.
	User string
	// Nodes is the requested node count (sbatch -N).
	Nodes int
	// TimeLimit is the wall-time limit in seconds (sbatch -t).
	TimeLimit float64
	// Duration is the modelled execution time of the workload; the job
	// completes after this time or hits TimeLimit, whichever comes first.
	Duration float64
	// Requeue controls whether a NODE_FAIL puts the job back in the queue.
	Requeue bool
	// MaxRequeues bounds how many times a requeued job may return to the
	// queue after NODE_FAIL; 0 means unbounded (the pre-fault-campaign
	// behaviour, SLURM's default).
	MaxRequeues int
	// OnRequeue runs when a NODE_FAIL puts a clone of the job back in the
	// queue, before the clone is submitted: failed is the failed attempt,
	// next the clone's spec, which the callback may mutate (checkpoint /
	// restart models shorten next.Duration to the work remaining past the
	// last completed phase).
	OnRequeue func(failed *Job, next *JobSpec)
	// Workload is the job's first-class workload model from the registry
	// (workload.Lookup): power-aware policies predict the job's draw from
	// its steady activity profile before placing it, and campaign runners
	// drive the model's phase cycle on the allocated nodes. Nil means an
	// idle-like job with no incremental draw.
	Workload *workload.Model
	// OnStart runs when the job starts, with the allocated hostnames.
	OnStart func(job *Job, hosts []string)
	// OnEnd runs when the job leaves the node set, with the final state.
	OnEnd func(job *Job, state JobState)
}

// Activity returns the steady activity profile power-aware policies
// predict with: the workload model's calibrated profile, or the idle zero
// value for jobs without a model.
func (s *JobSpec) Activity() power.Activity {
	if s.Workload == nil {
		return power.Activity{}
	}
	return s.Workload.Steady
}

// Job is a scheduled instance of a JobSpec.
type Job struct {
	// ID is the cluster-unique job id.
	ID int
	// Spec is the submission.
	Spec JobSpec

	state     JobState
	submitted float64
	started   float64
	ended     float64
	hosts     []string
	attempt   int     // 0 for the original submission, +1 per requeue
	runScale  float64 // runtime stretch applied at start (0 until started)
	endEvent  sim.Handle
	release   *releaseEntry
}

// State returns the job state.
func (j *Job) State() JobState { return j.state }

// Attempt returns the requeue generation: 0 for the original submission,
// incremented each time a NODE_FAIL clone re-enters the queue.
func (j *Job) Attempt() int { return j.attempt }

// RuntimeScale returns the runtime stretch the scheduler's runtime scaler
// applied when the job started (1 when no scaler is installed; 0 while the
// job has never started).
func (j *Job) RuntimeScale() float64 { return j.runScale }

// Hosts returns the allocated hostnames (nil unless running or finished).
func (j *Job) Hosts() []string { return append([]string(nil), j.hosts...) }

// SubmitTime, StartTime and EndTime return the job's timestamps; Start and
// End are zero until the respective transition.
func (j *Job) SubmitTime() float64 { return j.submitted }

// StartTime returns when the job started (0 if never started).
func (j *Job) StartTime() float64 { return j.started }

// EndTime returns when the job ended (0 if still queued/running).
func (j *Job) EndTime() float64 { return j.ended }

type nodeInfo struct {
	host  string
	idx   int // position in the partition order
	state NodeState
	jobID int // running job, 0 if none
}

// Scheduler is the controller daemon (slurmctld).
type Scheduler struct {
	engine      *sim.Engine
	partition   string
	policy      Policy
	advisor     PowerAdvisor
	linearScan  bool
	fifoOrdered bool // policy priority == submission order; skip sorting

	nodes    map[string]*nodeInfo
	order    []string // stable allocation order
	free     freeIndex
	releases releaseHeap
	queue    []*Job // pending, submission order
	jobs     map[int]*Job
	nextID   int

	// runtimeScale, when installed (WithRuntimeScaler), stretches each
	// job's modelled execution time at start: fault campaigns return > 1
	// for allocations touching straggler nodes or degraded-network windows.
	runtimeScale func(job *Job, hosts []string) float64

	// Per-cycle scratch, rebuilt on every scheduling pass: the priority
	// snapshot of the pending queue, the reservation walk's value-copy
	// release heap, and the cycle callback itself. All three are consumed
	// strictly within one trySchedule call (kick only enqueues an engine
	// event), so reusing them is safe and keeps the scheduling cycle —
	// which runs after every submission and completion — allocation-free.
	cycleFn      func(*sim.Engine)
	orderScratch []*Job
	relScratch   scratchHeap
}

// New builds a scheduler over the given hostnames. The default policy is
// EASY backfill, matching the production SLURM configuration.
func New(engine *sim.Engine, partition string, hostnames []string, opts ...Option) (*Scheduler, error) {
	if engine == nil {
		return nil, fmt.Errorf("sched: nil engine")
	}
	if len(hostnames) == 0 {
		return nil, fmt.Errorf("sched: empty partition")
	}
	s := &Scheduler{
		engine:    engine,
		partition: partition,
		policy:    EASY(),
		nodes:     make(map[string]*nodeInfo, len(hostnames)),
		jobs:      make(map[int]*Job),
		nextID:    1,
	}
	for i, h := range hostnames {
		if _, dup := s.nodes[h]; dup {
			return nil, fmt.Errorf("sched: duplicate hostname %q", h)
		}
		s.nodes[h] = &nodeInfo{host: h, idx: i, state: NodeIdle}
		s.order = append(s.order, h)
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if pa, ok := s.policy.(PowerAwarePolicy); ok && s.advisor != nil {
		pa.SetAdvisor(s.advisor)
	}
	_, s.fifoOrdered = s.policy.(interface{ keepsSubmissionOrder() })
	if s.linearScan {
		s.free = &linearFree{s: s}
	} else {
		idx := make([]int, len(s.order))
		for i := range idx {
			idx[i] = i
		}
		s.free = &indexedFree{order: s.order, idx: idx}
	}
	return s, nil
}

// PolicyName returns the active scheduling policy's name.
func (s *Scheduler) PolicyName() string { return s.policy.Name() }

// Submit queues a job; scheduling is attempted at the current virtual time.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("sched: job %q requests %d nodes", spec.Name, spec.Nodes)
	}
	if spec.Nodes > len(s.nodes) {
		return nil, fmt.Errorf("sched: job %q requests %d nodes, partition has %d", spec.Name, spec.Nodes, len(s.nodes))
	}
	if spec.TimeLimit <= 0 {
		return nil, fmt.Errorf("sched: job %q needs a positive time limit", spec.Name)
	}
	if spec.Duration < 0 {
		return nil, fmt.Errorf("sched: job %q has negative duration", spec.Name)
	}
	job := &Job{ID: s.nextID, Spec: spec, state: StatePending, submitted: s.engine.Now()}
	s.nextID++
	s.jobs[job.ID] = job
	s.queue = append(s.queue, job)
	s.kick()
	return job, nil
}

// Cancel removes a pending job or stops a running one (scancel).
func (s *Scheduler) Cancel(jobID int) error {
	job, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("sched: unknown job %d", jobID)
	}
	switch job.state {
	case StatePending:
		s.removeFromQueue(job)
		job.state = StateCancelled
		job.ended = s.engine.Now()
		s.finish(job, StateCancelled)
	case StateRunning:
		s.endJob(job, StateCancelled)
	default:
		return fmt.Errorf("sched: job %d already %s", jobID, job.state)
	}
	return nil
}

// NodeDown marks a node failed (e.g. thermal halt). A job running there
// ends in NODE_FAIL and is requeued when its spec asks for it.
func (s *Scheduler) NodeDown(host string) error {
	ni, ok := s.nodes[host]
	if !ok {
		return fmt.Errorf("sched: unknown node %q", host)
	}
	if ni.state == NodeDown {
		return nil
	}
	victim := ni.jobID
	if ni.state == NodeIdle {
		s.free.Remove(ni.idx)
	}
	ni.state = NodeDown
	ni.jobID = 0
	if victim != 0 {
		job := s.jobs[victim]
		requeue := job.Spec.Requeue &&
			(job.Spec.MaxRequeues <= 0 || job.attempt < job.Spec.MaxRequeues)
		s.endJob(job, StateNodeFail)
		if requeue {
			spec := job.Spec
			if spec.OnRequeue != nil {
				spec.OnRequeue(job, &spec)
			}
			clone := &Job{ID: s.nextID, Spec: spec, state: StatePending,
				submitted: s.engine.Now(), attempt: job.attempt + 1}
			s.nextID++
			s.jobs[clone.ID] = clone
			s.queue = append(s.queue, clone)
		}
	}
	s.kick()
	return nil
}

// NodeUp returns a failed node to service.
func (s *Scheduler) NodeUp(host string) error {
	ni, ok := s.nodes[host]
	if !ok {
		return fmt.Errorf("sched: unknown node %q", host)
	}
	if ni.state == NodeDown {
		ni.state = NodeIdle
		s.free.Add(ni.idx)
	}
	s.kick()
	return nil
}

// Job returns a job by id.
func (s *Scheduler) Job(id int) (*Job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// Reschedule requests a scheduling pass at the current instant. External
// controllers use it when conditions the scheduler cannot see change —
// the power plane calls it when budget headroom reappears, so
// power-delayed heads do not wait for the next job event.
func (s *Scheduler) Reschedule() { s.kick() }

// kick schedules a trySchedule pass at the current instant.
func (s *Scheduler) kick() {
	// Scheduling runs as an event so that submissions during event
	// processing still honour engine ordering.
	if s.cycleFn == nil {
		s.cycleFn = func(*sim.Engine) { s.trySchedule() }
	}
	if _, err := s.engine.ScheduleAfter(0, "sched.cycle", s.cycleFn); err != nil {
		panic(fmt.Sprintf("sched: kick: %v", err)) // unreachable: delay 0 is valid
	}
}

// pendingByPriority returns the pending queue in the policy's priority
// order; the sort is stable, so equal priorities keep submission order.
// Policies that keep submission order outright skip the sort. The snapshot
// lives in the scheduler's scratch buffer: each call invalidates the
// previous one, which trySchedule (the only caller) never needs again.
func (s *Scheduler) pendingByPriority() []*Job {
	out := append(s.orderScratch[:0], s.queue...)
	s.orderScratch = out
	if !s.fifoOrdered {
		sort.SliceStable(out, func(i, j int) bool { return s.policy.Less(out[i], out[j]) })
	}
	return out
}

// trySchedule starts the highest-priority pending job while it fits, then
// (when the policy asks for it) runs an EASY backfill pass: later jobs may
// start out of order as long as they cannot delay the blocked head's
// reservation.
func (s *Scheduler) trySchedule() {
	// Priority order is invariant while heads are started (free nodes only
	// shrink), so one sort serves the whole pass — unless an OnStart
	// callback submits new jobs, which forces a re-sort.
	resort := true
	var order []*Job
	idx := 0
	for {
		if resort {
			order = s.pendingByPriority()
			idx = 0
			resort = false
		}
		if idx >= len(order) {
			break
		}
		head := order[idx]
		if head.state != StatePending {
			// An OnStart callback cancelled it out of the snapshot.
			idx++
			continue
		}
		if head.Spec.Nodes > s.free.Count() {
			break
		}
		if gate, ok := s.policy.(admissionGate); ok && !gate.Admit(head, s.releases.Len()) {
			// The head fits node-wise but not budget-wise: stop the pass
			// (power-aware policies run no backfill, so nothing overtakes
			// it) and wait for job completions or a power plane
			// Reschedule to retry.
			break
		}
		before := s.nextID
		s.start(head, s.pickHosts(head))
		idx++
		resort = s.nextID != before
	}
	if !s.policy.Backfill() || len(s.queue) < 2 {
		return
	}
	// Compute the head's shadow start from running jobs' wall-time limits,
	// then admit any later job that either ends before the shadow time or
	// fits in the nodes the head won't need.
	order = s.pendingByPriority()
	shadow, extra := s.reservation(order[0])
	now := s.engine.Now()
	for _, cand := range s.policy.BackfillOrder(order[1:]) {
		if cand.state != StatePending || cand.Spec.Nodes > s.free.Count() {
			continue
		}
		endsBeforeShadow := now+cand.Spec.TimeLimit <= shadow
		if !endsBeforeShadow && cand.Spec.Nodes > extra {
			continue
		}
		s.start(cand, s.pickHosts(cand))
		if !endsBeforeShadow {
			// Only charge the spare-node budget when it was the admitting
			// reason: a job that ends before the shadow time has returned
			// its nodes by then, whichever nodes it borrowed.
			extra -= cand.Spec.Nodes
		}
	}
}

// reservation returns the head job's expected start (shadow time) and the
// number of nodes that remain free at that time beyond the head's need.
// When the head can never start with the nodes currently in service (e.g.
// enough of the partition is down), it returns +Inf: no backfill can delay
// a start that is not coming, so every fitting candidate is harmless.
func (s *Scheduler) reservation(head *Job) (shadow float64, extraNodes int) {
	avail := s.free.Count()
	if head.Spec.Nodes <= avail {
		return s.engine.Now(), avail - head.Spec.Nodes
	}
	if s.linearScan {
		return s.reservationRescan(head, avail)
	}
	// Walk the maintained release heap in time order on a value-copy
	// scratch heap: O(releases) to heapify, then only as many pops as it
	// takes to fit the head. Releases at the same instant free together,
	// so a whole group is accumulated before the fit test.
	scratch := s.releases.scratchInto(s.relScratch)
	s.relScratch = scratch // retain the (possibly grown) backing for reuse
	for scratch.Len() > 0 {
		at := scratch[0].at
		for scratch.Len() > 0 && scratch[0].at == at {
			avail += scratch[0].nodes
			heap.Pop(&scratch)
		}
		if avail >= head.Spec.Nodes {
			return at, avail - head.Spec.Nodes
		}
	}
	return math.Inf(1), 0
}

// reservationRescan recomputes the reservation the way the seed scheduler
// did — a full partition scan per pass — and is kept, together with
// linearFree, as the benchmark baseline for the indexed structures.
func (s *Scheduler) reservationRescan(head *Job, avail int) (float64, int) {
	perJob := make(map[int]int)
	for _, h := range s.order {
		if s.nodes[h].state == NodeAlloc {
			perJob[s.nodes[h].jobID]++
		}
	}
	releases := make([]releaseEntry, 0, len(perJob))
	for id, count := range perJob {
		j := s.jobs[id]
		releases = append(releases, releaseEntry{at: j.started + j.Spec.TimeLimit, nodes: count, jobID: id})
	}
	sort.Slice(releases, func(i, k int) bool {
		if releases[i].at != releases[k].at {
			return releases[i].at < releases[k].at
		}
		return releases[i].jobID < releases[k].jobID
	})
	for i := 0; i < len(releases); {
		at := releases[i].at
		for i < len(releases) && releases[i].at == at {
			avail += releases[i].nodes
			i++
		}
		if avail >= head.Spec.Nodes {
			return at, avail - head.Spec.Nodes
		}
	}
	return math.Inf(1), 0
}

// pickHosts asks the policy for the job's allocation and validates it.
func (s *Scheduler) pickHosts(job *Job) []string {
	hosts := s.policy.PickHosts(s.free.Hosts(), job)
	if len(hosts) != job.Spec.Nodes {
		panic(fmt.Sprintf("sched: policy %s picked %d hosts for job %d (want %d)",
			s.policy.Name(), len(hosts), job.ID, job.Spec.Nodes))
	}
	return hosts
}

func (s *Scheduler) start(job *Job, hosts []string) {
	s.removeFromQueue(job)
	job.state = StateRunning
	job.started = s.engine.Now()
	job.hosts = append([]string(nil), hosts...)
	for _, h := range hosts {
		ni := s.nodes[h]
		if ni == nil || ni.state != NodeIdle {
			panic(fmt.Sprintf("sched: policy %s picked non-idle host %q for job %d",
				s.policy.Name(), h, job.ID))
		}
		ni.state = NodeAlloc
		ni.jobID = job.ID
		s.free.Remove(ni.idx)
	}
	job.release = &releaseEntry{at: job.started + job.Spec.TimeLimit, nodes: len(hosts), jobID: job.ID}
	s.releases.push(job.release)
	if s.advisor != nil {
		// Reserve the predicted draw until the plane's measurements see it.
		s.advisor.NotePlacement(job.Spec.Activity(), job.Spec.Nodes)
	}
	job.runScale = 1
	if s.runtimeScale != nil {
		if scale := s.runtimeScale(job, job.hosts); scale > 1 {
			job.runScale = scale
		}
	}
	runFor := job.Spec.Duration * job.runScale
	final := StateCompleted
	if job.Spec.TimeLimit < runFor {
		runFor = job.Spec.TimeLimit
		final = StateTimeout
	}
	// The job-end event is a cross-shard barrier (it releases nodes, fires
	// user callbacks and kicks the scheduling cycle) — but its allocation
	// is fixed here, so the nodes it will integrate are known in advance:
	// schedule it prepared, keyed by the allocation's node indexes (the
	// hostname list the scheduler was built over is the cluster's node
	// order, so queue positions are shard keys). The scheduling cycle
	// itself stays an unkeyed barrier: its allocation decisions are made
	// only as it executes.
	keys := make([]int, 0, len(hosts))
	for _, h := range hosts {
		keys = append(keys, s.nodes[h].idx)
	}
	ev, err := s.engine.ScheduleAfterPrepared(runFor, fmt.Sprintf("sched.end(job %d)", job.ID), keys, func(*sim.Engine) {
		s.endJob(job, final)
	})
	if err != nil {
		panic(fmt.Sprintf("sched: schedule end: %v", err)) // unreachable: runFor >= 0
	}
	job.endEvent = ev
	if job.Spec.OnStart != nil {
		job.Spec.OnStart(job, job.Hosts())
	}
}

// endJob releases a running job's nodes with the given final state.
func (s *Scheduler) endJob(job *Job, state JobState) {
	if job.state != StateRunning {
		return
	}
	job.endEvent.Cancel()
	job.endEvent = sim.Handle{}
	if job.release != nil {
		s.releases.remove(job.release)
		job.release = nil
	}
	for _, h := range job.hosts {
		if ni := s.nodes[h]; ni.jobID == job.ID {
			ni.jobID = 0
			if ni.state == NodeAlloc {
				ni.state = NodeIdle
				s.free.Add(ni.idx)
			}
		}
	}
	job.state = state
	job.ended = s.engine.Now()
	s.finish(job, state)
	s.kick()
}

func (s *Scheduler) finish(job *Job, state JobState) {
	if job.Spec.OnEnd != nil {
		job.Spec.OnEnd(job, state)
	}
}

func (s *Scheduler) removeFromQueue(job *Job) {
	for i, j := range s.queue {
		if j == job {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// JobRow is one squeue/sacct line.
type JobRow struct {
	ID        int
	Name      string
	User      string
	State     JobState
	Nodes     int
	Hosts     []string
	Submit    float64
	Start     float64
	End       float64
	TimeLimit float64
}

// Squeue lists pending and running jobs, pending first in the policy's
// priority order.
func (s *Scheduler) Squeue() []JobRow {
	var rows []JobRow
	for _, j := range s.pendingByPriority() {
		rows = append(rows, s.row(j))
	}
	var running []JobRow
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running = append(running, s.row(j))
		}
	}
	sort.Slice(running, func(i, k int) bool { return running[i].ID < running[k].ID })
	return append(rows, running...)
}

// QueueDepth is the scheduler's load probe: how many jobs sit in the
// pending queue and how many hold nodes right now. It is the queue half
// of the headroom picture the fleet meta-scheduler scores clusters by
// (the power half is powerplane.Governor.HeadroomWatts); campaign runners
// sample it at submission instants so per-cluster backlogs surface in
// fleet reports without touching scheduler internals.
func (s *Scheduler) QueueDepth() (pending, running int) {
	for _, j := range s.queue {
		if j.state == StatePending {
			pending++
		}
	}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	return pending, running
}

// Sacct lists all jobs ever submitted, by id.
func (s *Scheduler) Sacct() []JobRow {
	rows := make([]JobRow, 0, len(s.jobs))
	for _, j := range s.jobs {
		rows = append(rows, s.row(j))
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].ID < rows[k].ID })
	return rows
}

func (s *Scheduler) row(j *Job) JobRow {
	return JobRow{
		ID: j.ID, Name: j.Spec.Name, User: j.Spec.User, State: j.state,
		Nodes: j.Spec.Nodes, Hosts: j.Hosts(), Submit: j.submitted,
		Start: j.started, End: j.ended, TimeLimit: j.Spec.TimeLimit,
	}
}

// NodeRow is one sinfo line.
type NodeRow struct {
	Host  string
	State NodeState
	JobID int
}

// Sinfo lists nodes in partition order.
func (s *Scheduler) Sinfo() []NodeRow {
	rows := make([]NodeRow, 0, len(s.order))
	for _, h := range s.order {
		ni := s.nodes[h]
		rows = append(rows, NodeRow{Host: h, State: ni.state, JobID: ni.jobID})
	}
	return rows
}

// Partition returns the partition name.
func (s *Scheduler) Partition() string { return s.partition }
