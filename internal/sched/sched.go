// Package sched implements the SLURM-style batch scheduler ported to Monte
// Cimone (Section IV-A of the paper lists SLURM among the essential
// production services brought up on the cluster).
//
// The scheduler manages one partition of named nodes, accepts batch jobs
// with node counts and wall-time limits, runs a FIFO queue with optional
// EASY backfill, and reacts to node failures (the thermal halt of node 7 in
// the paper surfaces as a NODE_FAIL job state). sinfo/squeue/sacct-style
// views expose the state. All timing is driven by the shared discrete-event
// engine.
package sched

import (
	"fmt"
	"sort"

	"montecimone/internal/sim"
)

// JobState follows SLURM's job life cycle.
type JobState string

// Job states (a subset of SLURM's).
const (
	StatePending   JobState = "PENDING"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateTimeout   JobState = "TIMEOUT"
	StateCancelled JobState = "CANCELLED"
	StateNodeFail  JobState = "NODE_FAIL"
)

// NodeState follows sinfo's node states.
type NodeState string

// Node states.
const (
	NodeIdle  NodeState = "idle"
	NodeAlloc NodeState = "alloc"
	NodeDown  NodeState = "down"
)

// JobSpec describes a batch submission.
type JobSpec struct {
	// Name is the job name (sbatch -J).
	Name string
	// User is the submitting user.
	User string
	// Nodes is the requested node count (sbatch -N).
	Nodes int
	// TimeLimit is the wall-time limit in seconds (sbatch -t).
	TimeLimit float64
	// Duration is the modelled execution time of the workload; the job
	// completes after this time or hits TimeLimit, whichever comes first.
	Duration float64
	// Requeue controls whether a NODE_FAIL puts the job back in the queue.
	Requeue bool
	// OnStart runs when the job starts, with the allocated hostnames.
	OnStart func(job *Job, hosts []string)
	// OnEnd runs when the job leaves the node set, with the final state.
	OnEnd func(job *Job, state JobState)
}

// Job is a scheduled instance of a JobSpec.
type Job struct {
	// ID is the cluster-unique job id.
	ID int
	// Spec is the submission.
	Spec JobSpec

	state     JobState
	submitted float64
	started   float64
	ended     float64
	hosts     []string
	endEvent  *sim.Event
}

// State returns the job state.
func (j *Job) State() JobState { return j.state }

// Hosts returns the allocated hostnames (nil unless running or finished).
func (j *Job) Hosts() []string { return append([]string(nil), j.hosts...) }

// SubmitTime, StartTime and EndTime return the job's timestamps; Start and
// End are zero until the respective transition.
func (j *Job) SubmitTime() float64 { return j.submitted }

// StartTime returns when the job started (0 if never started).
func (j *Job) StartTime() float64 { return j.started }

// EndTime returns when the job ended (0 if still queued/running).
func (j *Job) EndTime() float64 { return j.ended }

type nodeInfo struct {
	host  string
	state NodeState
	jobID int // running job, 0 if none
}

// Option configures the scheduler.
type Option interface{ apply(*Scheduler) }

type backfillOption bool

func (b backfillOption) apply(s *Scheduler) { s.backfill = bool(b) }

// WithBackfill enables or disables EASY backfill (default on, as in the
// production SLURM configuration).
func WithBackfill(enabled bool) Option { return backfillOption(enabled) }

// Scheduler is the controller daemon (slurmctld).
type Scheduler struct {
	engine    *sim.Engine
	partition string
	backfill  bool

	nodes  map[string]*nodeInfo
	order  []string // stable allocation order
	queue  []*Job   // pending, FIFO
	jobs   map[int]*Job
	nextID int
}

// New builds a scheduler over the given hostnames.
func New(engine *sim.Engine, partition string, hostnames []string, opts ...Option) (*Scheduler, error) {
	if engine == nil {
		return nil, fmt.Errorf("sched: nil engine")
	}
	if len(hostnames) == 0 {
		return nil, fmt.Errorf("sched: empty partition")
	}
	s := &Scheduler{
		engine:    engine,
		partition: partition,
		backfill:  true,
		nodes:     make(map[string]*nodeInfo, len(hostnames)),
		jobs:      make(map[int]*Job),
		nextID:    1,
	}
	for _, h := range hostnames {
		if _, dup := s.nodes[h]; dup {
			return nil, fmt.Errorf("sched: duplicate hostname %q", h)
		}
		s.nodes[h] = &nodeInfo{host: h, state: NodeIdle}
		s.order = append(s.order, h)
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s, nil
}

// Submit queues a job; scheduling is attempted at the current virtual time.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("sched: job %q requests %d nodes", spec.Name, spec.Nodes)
	}
	if spec.Nodes > len(s.nodes) {
		return nil, fmt.Errorf("sched: job %q requests %d nodes, partition has %d", spec.Name, spec.Nodes, len(s.nodes))
	}
	if spec.TimeLimit <= 0 {
		return nil, fmt.Errorf("sched: job %q needs a positive time limit", spec.Name)
	}
	if spec.Duration < 0 {
		return nil, fmt.Errorf("sched: job %q has negative duration", spec.Name)
	}
	job := &Job{ID: s.nextID, Spec: spec, state: StatePending, submitted: s.engine.Now()}
	s.nextID++
	s.jobs[job.ID] = job
	s.queue = append(s.queue, job)
	s.kick()
	return job, nil
}

// Cancel removes a pending job or stops a running one (scancel).
func (s *Scheduler) Cancel(jobID int) error {
	job, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("sched: unknown job %d", jobID)
	}
	switch job.state {
	case StatePending:
		s.removeFromQueue(job)
		job.state = StateCancelled
		job.ended = s.engine.Now()
		s.finish(job, StateCancelled)
	case StateRunning:
		s.endJob(job, StateCancelled)
	default:
		return fmt.Errorf("sched: job %d already %s", jobID, job.state)
	}
	return nil
}

// NodeDown marks a node failed (e.g. thermal halt). A job running there
// ends in NODE_FAIL and is requeued when its spec asks for it.
func (s *Scheduler) NodeDown(host string) error {
	ni, ok := s.nodes[host]
	if !ok {
		return fmt.Errorf("sched: unknown node %q", host)
	}
	if ni.state == NodeDown {
		return nil
	}
	victim := ni.jobID
	ni.state = NodeDown
	ni.jobID = 0
	if victim != 0 {
		job := s.jobs[victim]
		requeue := job.Spec.Requeue
		s.endJob(job, StateNodeFail)
		if requeue {
			clone := &Job{ID: s.nextID, Spec: job.Spec, state: StatePending, submitted: s.engine.Now()}
			s.nextID++
			s.jobs[clone.ID] = clone
			s.queue = append(s.queue, clone)
		}
	}
	s.kick()
	return nil
}

// NodeUp returns a failed node to service.
func (s *Scheduler) NodeUp(host string) error {
	ni, ok := s.nodes[host]
	if !ok {
		return fmt.Errorf("sched: unknown node %q", host)
	}
	if ni.state == NodeDown {
		ni.state = NodeIdle
	}
	s.kick()
	return nil
}

// Job returns a job by id.
func (s *Scheduler) Job(id int) (*Job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// kick schedules a trySchedule pass at the current instant.
func (s *Scheduler) kick() {
	// Scheduling runs as an event so that submissions during event
	// processing still honour engine ordering.
	if _, err := s.engine.ScheduleAfter(0, "sched.cycle", func(*sim.Engine) { s.trySchedule() }); err != nil {
		panic(fmt.Sprintf("sched: kick: %v", err)) // unreachable: delay 0 is valid
	}
}

func (s *Scheduler) idleHosts() []string {
	var idle []string
	for _, h := range s.order {
		if s.nodes[h].state == NodeIdle {
			idle = append(idle, h)
		}
	}
	return idle
}

// trySchedule starts the queue head if it fits, then (optionally) EASY
// backfills later jobs that cannot delay the head's reservation.
func (s *Scheduler) trySchedule() {
	for {
		progressed := false
		idle := s.idleHosts()
		if len(s.queue) > 0 && s.queue[0].Spec.Nodes <= len(idle) {
			s.start(s.queue[0], idle[:s.queue[0].Spec.Nodes])
			progressed = true
		}
		if !progressed {
			break
		}
	}
	if !s.backfill || len(s.queue) < 2 {
		return
	}
	// EASY backfill: compute the head job's shadow start from running
	// jobs' wall-time limits, then start any later job that either ends
	// before the shadow time or fits in the nodes the head won't need.
	head := s.queue[0]
	shadow, extra := s.reservation(head)
	for i := 1; i < len(s.queue); {
		cand := s.queue[i]
		idle := s.idleHosts()
		fitsNow := cand.Spec.Nodes <= len(idle)
		now := s.engine.Now()
		harmless := now+cand.Spec.TimeLimit <= shadow || cand.Spec.Nodes <= extra
		if fitsNow && harmless {
			s.start(cand, idle[:cand.Spec.Nodes])
			if cand.Spec.Nodes <= extra {
				extra -= cand.Spec.Nodes
			}
			// start removed cand from the queue; do not advance i.
			continue
		}
		i++
	}
}

// reservation returns the head job's expected start (shadow time) and the
// number of nodes that remain free at that time beyond the head's need.
func (s *Scheduler) reservation(head *Job) (shadow float64, extraNodes int) {
	type release struct {
		at    float64
		hosts int
	}
	avail := len(s.idleHosts())
	if head.Spec.Nodes <= avail {
		return s.engine.Now(), avail - head.Spec.Nodes
	}
	var releases []release
	perJob := make(map[int]int)
	for _, h := range s.order {
		if s.nodes[h].state == NodeAlloc {
			perJob[s.nodes[h].jobID]++
		}
	}
	for id, count := range perJob {
		j := s.jobs[id]
		releases = append(releases, release{at: j.started + j.Spec.TimeLimit, hosts: count})
	}
	sort.Slice(releases, func(i, k int) bool { return releases[i].at < releases[k].at })
	for _, r := range releases {
		avail += r.hosts
		if avail >= head.Spec.Nodes {
			return r.at, avail - head.Spec.Nodes
		}
	}
	// Unreachable if the submission validated against partition size.
	return s.engine.Now(), 0
}

func (s *Scheduler) start(job *Job, hosts []string) {
	s.removeFromQueue(job)
	job.state = StateRunning
	job.started = s.engine.Now()
	job.hosts = append([]string(nil), hosts...)
	for _, h := range hosts {
		s.nodes[h].state = NodeAlloc
		s.nodes[h].jobID = job.ID
	}
	runFor := job.Spec.Duration
	final := StateCompleted
	if job.Spec.TimeLimit < runFor {
		runFor = job.Spec.TimeLimit
		final = StateTimeout
	}
	ev, err := s.engine.ScheduleAfter(runFor, fmt.Sprintf("sched.end(job %d)", job.ID), func(*sim.Engine) {
		s.endJob(job, final)
	})
	if err != nil {
		panic(fmt.Sprintf("sched: schedule end: %v", err)) // unreachable: runFor >= 0
	}
	job.endEvent = ev
	if job.Spec.OnStart != nil {
		job.Spec.OnStart(job, job.Hosts())
	}
}

// endJob releases a running job's nodes with the given final state.
func (s *Scheduler) endJob(job *Job, state JobState) {
	if job.state != StateRunning {
		return
	}
	if job.endEvent != nil {
		job.endEvent.Cancel()
		job.endEvent = nil
	}
	for _, h := range job.hosts {
		if ni := s.nodes[h]; ni.jobID == job.ID {
			ni.jobID = 0
			if ni.state == NodeAlloc {
				ni.state = NodeIdle
			}
		}
	}
	job.state = state
	job.ended = s.engine.Now()
	s.finish(job, state)
	s.kick()
}

func (s *Scheduler) finish(job *Job, state JobState) {
	if job.Spec.OnEnd != nil {
		job.Spec.OnEnd(job, state)
	}
}

func (s *Scheduler) removeFromQueue(job *Job) {
	for i, j := range s.queue {
		if j == job {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// JobRow is one squeue/sacct line.
type JobRow struct {
	ID        int
	Name      string
	User      string
	State     JobState
	Nodes     int
	Hosts     []string
	Submit    float64
	Start     float64
	End       float64
	TimeLimit float64
}

// Squeue lists pending and running jobs, pending in queue order first.
func (s *Scheduler) Squeue() []JobRow {
	var rows []JobRow
	for _, j := range s.queue {
		rows = append(rows, s.row(j))
	}
	var running []JobRow
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running = append(running, s.row(j))
		}
	}
	sort.Slice(running, func(i, k int) bool { return running[i].ID < running[k].ID })
	return append(rows, running...)
}

// Sacct lists all jobs ever submitted, by id.
func (s *Scheduler) Sacct() []JobRow {
	rows := make([]JobRow, 0, len(s.jobs))
	for _, j := range s.jobs {
		rows = append(rows, s.row(j))
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].ID < rows[k].ID })
	return rows
}

func (s *Scheduler) row(j *Job) JobRow {
	return JobRow{
		ID: j.ID, Name: j.Spec.Name, User: j.Spec.User, State: j.state,
		Nodes: j.Spec.Nodes, Hosts: j.Hosts(), Submit: j.submitted,
		Start: j.started, End: j.ended, TimeLimit: j.Spec.TimeLimit,
	}
}

// NodeRow is one sinfo line.
type NodeRow struct {
	Host  string
	State NodeState
	JobID int
}

// Sinfo lists nodes in partition order.
func (s *Scheduler) Sinfo() []NodeRow {
	rows := make([]NodeRow, 0, len(s.order))
	for _, h := range s.order {
		ni := s.nodes[h]
		rows = append(rows, NodeRow{Host: h, State: ni.state, JobID: ni.jobID})
	}
	return rows
}

// Partition returns the partition name.
func (s *Scheduler) Partition() string { return s.partition }
