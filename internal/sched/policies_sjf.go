package sched

// sjfPolicy orders the queue by requested wall-time limit, shortest first
// (the scheduler cannot know true durations, so the user-declared limit is
// the estimate, as in real SJF batch systems). Ties keep submission order.
// Backfill stays on, with candidates likewise tried shortest first, which
// drives mean wait time down at the cost of delaying long jobs.
type sjfPolicy struct{}

// SJF returns the shortest-job-first policy.
func SJF() Policy { return sjfPolicy{} }

func (sjfPolicy) Name() string { return "sjf" }

func (sjfPolicy) Less(a, b *Job) bool { return a.Spec.TimeLimit < b.Spec.TimeLimit }

func (sjfPolicy) Backfill() bool { return true }

// BackfillOrder keeps the queue order: cands already arrive shortest
// first.
func (sjfPolicy) BackfillOrder(cands []*Job) []*Job { return cands }

func (sjfPolicy) PickHosts(free []string, job *Job) []string {
	return free[:job.Spec.Nodes]
}
