package sched

import "sort"

// bestFitPolicy treats the idle nodes×time rectangle in front of the
// blocked head's shadow time as a packing strip, after the two-bar-charts
// packing literature (Erzin et al., "A 3/2-approximation for big two-bar
// charts packing", arXiv:2006.10361, and "Approximation Algorithms for
// Two-Bar Charts Packing Problem", arXiv:2106.09919): each job is a bar of
// width Spec.Nodes and length TimeLimit, and the packing heuristics there
// place the big bars first because small bars fill remaining gaps far more
// easily than the reverse.
//
// Concretely: queue priority stays submission order, so the oldest pending
// job always owns the EASY reservation and can never starve; behind it,
// backfill candidates are tried widest first (ties: longest first), which
// co-schedules the jobs that are hardest to place and leaves narrow short
// jobs to plug what remains. Host selection splits the free list into two
// shelves, echoing the big/small bar split of the papers: big jobs (at
// least half the free strip) allocate from the head of the partition,
// small ones from the tail.
type bestFitPolicy struct{ fifoPolicy }

// BestFit returns the strip-packing-informed best-fit policy.
func BestFit() Policy { return bestFitPolicy{} }

func (bestFitPolicy) Name() string { return "bestfit" }

func (bestFitPolicy) Backfill() bool { return true }

func (bestFitPolicy) BackfillOrder(cands []*Job) []*Job {
	out := append([]*Job(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Spec.Nodes != out[j].Spec.Nodes {
			return out[i].Spec.Nodes > out[j].Spec.Nodes
		}
		return out[i].Spec.TimeLimit > out[j].Spec.TimeLimit
	})
	return out
}

func (bestFitPolicy) PickHosts(free []string, job *Job) []string {
	n := job.Spec.Nodes
	if 2*n >= len(free) {
		return free[:n]
	}
	return free[len(free)-n:]
}
