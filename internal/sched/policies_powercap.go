package sched

import "sort"

// powercapPolicy closes the power-management loop at the scheduling
// layer: jobs start in submission order, but a job whose predicted draw
// (rail model at its workload model's steady activity) would exceed the
// cluster power budget's headroom is delayed until running work finishes
// or the power plane reports headroom again, and allocations prefer the
// coolest idle nodes so new load lands where the thermal margin is
// largest.
//
// Fairness: the queue keeps submission order and no backfill runs behind
// a power-blocked head, so later jobs cannot overtake it and pin the
// budget; and a blocked head is force-admitted once nothing is running
// (measured draw then converges to the idle floor, which is the best the
// cluster can offer). Every job therefore eventually starts on a finite
// workload — the policy conformance suite exercises exactly this.
//
// Without an advisor (no power plane configured) the policy degrades to
// plain FIFO, which keeps it usable in the conformance harness and in
// partitions that opt out of power management.
type powercapPolicy struct {
	fifoPolicy
	advisor PowerAdvisor
}

// PowerCap returns the power-budget-aware policy. Wire the power plane in
// with WithPowerAdvisor; without it the policy behaves like FIFO.
func PowerCap() Policy { return &powercapPolicy{} }

func (*powercapPolicy) Name() string { return "powercap" }

// SetAdvisor implements PowerAwarePolicy.
func (p *powercapPolicy) SetAdvisor(a PowerAdvisor) { p.advisor = a }

// Admit implements the admission gate: the job's predicted incremental
// draw must fit in the current headroom, unless the cluster is idle (the
// forced-progress rule).
func (p *powercapPolicy) Admit(job *Job, runningJobs int) bool {
	if p.advisor == nil || runningJobs == 0 {
		return true
	}
	predicted := p.advisor.PredictedJobWatts(job.Spec.Activity(), job.Spec.Nodes)
	return predicted <= p.advisor.HeadroomWatts()
}

// PickHosts allocates the coolest idle nodes first (ties keep partition
// order via the stable sort). Temperatures are read once per host, not
// inside the comparator.
func (p *powercapPolicy) PickHosts(free []string, job *Job) []string {
	if p.advisor == nil {
		return free[:job.Spec.Nodes]
	}
	order := append([]string(nil), free...)
	temps := make(map[string]float64, len(order))
	for _, h := range order {
		temps[h] = p.advisor.NodeTempC(h)
	}
	sort.SliceStable(order, func(i, j int) bool { return temps[order[i]] < temps[order[j]] })
	return order[:job.Spec.Nodes]
}
