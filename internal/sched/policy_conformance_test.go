package sched

import (
	"fmt"
	"testing"

	"montecimone/internal/sim"
)

// Conformance suite: every registered policy must (1) never allocate a
// node to two jobs at once, (2) run every job of a finite workload to a
// terminal state (no starvation), surviving a mid-run node failure and
// recovery, and (3) schedule deterministically. The EASY policy's
// bit-for-bit reproduction of the seed scheduler is additionally pinned by
// the start-time assertions in sched_test.go, which predate the policy
// engine and run unchanged.
func TestPolicyConformance(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			first := conformanceRun(t, name)
			second := conformanceRun(t, name)
			if len(first) != len(second) {
				t.Fatalf("job counts differ across runs: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Errorf("job %d start differs across runs: %v vs %v", i+1, first[i], second[i])
				}
			}
		})
	}
}

// conformanceRun drives one deterministic mixed campaign under the named
// policy and returns the per-job start times (by job id).
func conformanceRun(t *testing.T, policy string) []float64 {
	t.Helper()
	pol, err := PolicyByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	s, err := New(e, "conf", hosts(16), WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	// busy tracks our own view of node occupancy to catch double
	// allocation independently of the scheduler's bookkeeping.
	busy := make(map[string]int)
	for i := 0; i < 60; i++ {
		i := i
		width := 1 + (i*5)%11
		if i%9 == 0 {
			width = 12 // wide blockers force backfill decisions
		}
		dur := 20 + float64((i*13)%97)
		spec := JobSpec{
			Name:      fmt.Sprintf("c%02d", i),
			Nodes:     width,
			TimeLimit: dur + 10 + float64(i%3)*40,
			Duration:  dur,
			Requeue:   i%4 == 0,
			OnStart: func(j *Job, hs []string) {
				for _, h := range hs {
					if owner, taken := busy[h]; taken {
						t.Errorf("policy %s: node %s allocated to job %d while job %d holds it", policy, h, j.ID, owner)
					}
					busy[h] = j.ID
				}
			},
			OnEnd: func(j *Job, _ JobState) {
				for _, h := range j.Hosts() {
					if busy[h] == j.ID {
						delete(busy, h)
					}
				}
			},
		}
		// Stagger submissions so arrivals interleave with completions.
		if _, err := e.ScheduleAt(float64(i)*3, "submit", func(*sim.Engine) {
			if _, err := s.Submit(spec); err != nil {
				t.Errorf("submit %s: %v", spec.Name, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.ScheduleAt(100, "down", func(*sim.Engine) { _ = s.NodeDown("mc03") }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScheduleAt(400, "up", func(*sim.Engine) { _ = s.NodeUp("mc03") }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rows := s.Sacct()
	starts := make([]float64, 0, len(rows))
	for _, row := range rows {
		switch row.State {
		case StatePending, StateRunning:
			t.Errorf("policy %s: job %d (%s) still %s after drain — starvation", policy, row.ID, row.Name, row.State)
		}
		starts = append(starts, row.Start)
	}
	if len(busy) != 0 {
		t.Errorf("policy %s: %d nodes still marked busy after drain", policy, len(busy))
	}
	return starts
}
