package sched

import (
	"math"
	"testing"

	"montecimone/internal/sim"
)

// The seed's reservation() fell through to shadow=Now(), extra=0 when the
// head could never fit (e.g. downed nodes), which silently blocked every
// backfill candidate. The fixed code returns a +Inf shadow instead: a head
// that is not starting cannot be delayed.
func TestReservationDownNodesSentinel(t *testing.T) {
	_, s := newSched(t, 4)
	if err := s.NodeDown("mc03"); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc04"); err != nil {
		t.Fatal(err)
	}
	head := s.mustSubmit(t, JobSpec{Name: "head", Nodes: 4, TimeLimit: 100, Duration: 10})
	shadow, extra := s.reservation(head)
	if !math.IsInf(shadow, 1) {
		t.Errorf("shadow = %v, want +Inf", shadow)
	}
	if extra != 0 {
		t.Errorf("extra = %d, want 0", extra)
	}
}

func TestBackfillProceedsWhenHeadCanNeverFit(t *testing.T) {
	e, s := newSched(t, 4)
	// 2 idle + 2 down; the head wants 4 and can never start until a
	// NodeUp. The small job must still backfill (regression: the seed
	// starved it).
	if err := s.NodeDown("mc03"); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc04"); err != nil {
		t.Fatal(err)
	}
	head := s.mustSubmit(t, JobSpec{Name: "head", Nodes: 4, TimeLimit: 100, Duration: 10})
	small := s.mustSubmit(t, JobSpec{Name: "small", Nodes: 1, TimeLimit: 1000, Duration: 300})
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if small.State() != StateRunning || small.StartTime() != 0 {
		t.Fatalf("small job state %s start %v, want running since 0", small.State(), small.StartTime())
	}
	if head.State() != StatePending {
		t.Fatalf("head state %s, want PENDING", head.State())
	}
	if err := s.NodeUp("mc03"); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeUp("mc04"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// With the nodes back at t=5 the head still waits for small's node:
	// 3 idle until small completes at t=300.
	if head.StartTime() != 300 {
		t.Errorf("head start = %v, want 300", head.StartTime())
	}
	if head.State() != StateCompleted {
		t.Errorf("head state = %s", head.State())
	}
}

// A candidate admitted because it ends before the shadow time returns its
// nodes before the head needs them, so it must not consume the spare-node
// budget (regression: the seed decremented extra whenever the candidate
// also happened to fit it, starving later legitimate backfill).
func TestBackfillExtraNotDoubleCounted(t *testing.T) {
	e, s := newSched(t, 4)
	// j1 holds 2 nodes until its 100 s limit. The head wants 3, so
	// shadow=100 and extra=1. Candidate a (1 node, 10 s limit) ends
	// before the shadow; candidate b (1 node, 200 s limit) needs the one
	// spare node. Both must start immediately.
	s.mustSubmit(t, JobSpec{Name: "j1", Nodes: 2, TimeLimit: 100, Duration: 100})
	head := s.mustSubmit(t, JobSpec{Name: "head", Nodes: 3, TimeLimit: 100, Duration: 10})
	a := s.mustSubmit(t, JobSpec{Name: "a", Nodes: 1, TimeLimit: 10, Duration: 10})
	b := s.mustSubmit(t, JobSpec{Name: "b", Nodes: 1, TimeLimit: 200, Duration: 150})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.StartTime() != 0 {
		t.Errorf("a start = %v, want 0", a.StartTime())
	}
	if b.StartTime() != 0 {
		t.Errorf("b start = %v, want 0 (spare-node budget was double-counted)", b.StartTime())
	}
	// b runs past the shadow on the spare node without delaying the head.
	if head.StartTime() != 100 {
		t.Errorf("head start = %v, want 100", head.StartTime())
	}
}

func TestCancelRequeuedClone(t *testing.T) {
	e, s := newSched(t, 2)
	s.mustSubmit(t, JobSpec{Name: "r", Nodes: 2, TimeLimit: 100, Duration: 50, Requeue: true})
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	rows := s.Squeue()
	if len(rows) != 1 || rows[0].State != StatePending {
		t.Fatalf("squeue = %+v, want one pending clone", rows)
	}
	clone, ok := s.Job(rows[0].ID)
	if !ok {
		t.Fatalf("clone %d not registered", rows[0].ID)
	}
	if err := s.Cancel(clone.ID); err != nil {
		t.Fatalf("cancel requeued clone: %v", err)
	}
	if clone.State() != StateCancelled {
		t.Errorf("clone state = %s, want CANCELLED", clone.State())
	}
	if got := len(s.Squeue()); got != 0 {
		t.Errorf("squeue rows = %d after cancel, want 0", got)
	}
	if err := s.NodeUp("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	acct := s.Sacct()
	if len(acct) != 2 || acct[0].State != StateNodeFail || acct[1].State != StateCancelled {
		t.Errorf("sacct = %+v, want NODE_FAIL then CANCELLED", acct)
	}
}

func TestNodeUpStartsBlockedHead(t *testing.T) {
	e, s := newSched(t, 2)
	if err := s.NodeDown("mc02"); err != nil {
		t.Fatal(err)
	}
	j := s.mustSubmit(t, JobSpec{Name: "wide", Nodes: 2, TimeLimit: 50, Duration: 20})
	if err := e.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if j.State() != StatePending {
		t.Fatalf("job state %s with a node down, want PENDING", j.State())
	}
	if err := s.NodeUp("mc02"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if j.StartTime() != 30 {
		t.Errorf("start = %v, want 30 (the NodeUp re-kick)", j.StartTime())
	}
	if j.State() != StateCompleted {
		t.Errorf("state = %s", j.State())
	}
}

func TestSubmitDuringOnEnd(t *testing.T) {
	e, s := newSched(t, 2)
	var follow *Job
	s.mustSubmit(t, JobSpec{
		Name: "first", Nodes: 2, TimeLimit: 100, Duration: 30,
		OnEnd: func(*Job, JobState) {
			j, err := s.Submit(JobSpec{Name: "second", Nodes: 2, TimeLimit: 100, Duration: 10})
			if err != nil {
				t.Errorf("submit during OnEnd: %v", err)
				return
			}
			follow = j
		},
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if follow == nil {
		t.Fatal("OnEnd submission did not happen")
	}
	if follow.SubmitTime() != 30 || follow.StartTime() != 30 {
		t.Errorf("follow submit/start = %v/%v, want 30/30", follow.SubmitTime(), follow.StartTime())
	}
	if follow.State() != StateCompleted {
		t.Errorf("follow state = %s", follow.State())
	}
}

// The linear-scan baseline must schedule identically to the indexed
// structures — only the data-structure costs differ.
func TestLinearScanMatchesIndexed(t *testing.T) {
	run := func(opts ...Option) []float64 {
		e := sim.NewEngine()
		s, err := New(e, "p", hosts(8), opts...)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []*Job
		for i := 0; i < 30; i++ {
			j, err := s.Submit(JobSpec{
				Name:      "j",
				Nodes:     1 + (i*3)%7,
				TimeLimit: 40 + float64(i%5)*30,
				Duration:  20 + float64(i%9)*10,
			})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		if _, err := e.ScheduleAt(60, "down", func(*sim.Engine) { _ = s.NodeDown("mc05") }); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ScheduleAt(200, "up", func(*sim.Engine) { _ = s.NodeUp("mc05") }); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		starts := make([]float64, len(jobs))
		for i, j := range jobs {
			starts[i] = j.StartTime()
		}
		return starts
	}
	indexed := run()
	linear := run(WithLinearScan(true))
	for i := range indexed {
		if indexed[i] != linear[i] {
			t.Errorf("job %d: indexed start %v, linear start %v", i, indexed[i], linear[i])
		}
	}
}

// An OnStart callback may cancel a job that is still pending in the same
// scheduling pass; the pass must not start it from its stale priority
// snapshot (regression: the cancelled job ran to COMPLETED).
func TestCancelDuringOnStart(t *testing.T) {
	e, s := newSched(t, 4)
	var victim *Job
	s.mustSubmit(t, JobSpec{
		Name: "canceller", Nodes: 1, TimeLimit: 50, Duration: 20,
		OnStart: func(*Job, []string) {
			if err := s.Cancel(victim.ID); err != nil {
				t.Errorf("cancel during OnStart: %v", err)
			}
		},
	})
	victim = s.mustSubmit(t, JobSpec{Name: "victim", Nodes: 1, TimeLimit: 50, Duration: 20})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.State() != StateCancelled {
		t.Errorf("victim state = %s, want CANCELLED", victim.State())
	}
	if victim.StartTime() != 0 || len(victim.Hosts()) != 0 {
		t.Errorf("victim ran anyway: start %v hosts %v", victim.StartTime(), victim.Hosts())
	}
}
