package sched

// easyPolicy is the production configuration from the paper: FIFO queue
// priority plus EASY backfill. A later job may start out of order only if
// it ends before the blocked head's shadow start time or fits in the nodes
// the head will not need — so the head's reservation is never delayed.
// Candidates are tried in submission order, as slurmctld does.
type easyPolicy struct{ fifoPolicy }

// EASY returns the default FIFO + EASY-backfill policy.
func EASY() Policy { return easyPolicy{} }

func (easyPolicy) Name() string { return "easy" }

func (easyPolicy) Backfill() bool { return true }
