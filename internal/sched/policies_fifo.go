package sched

// fifoPolicy runs jobs strictly in submission order with no backfill: the
// queue head blocks everything behind it until it fits. This is the
// scheduler the paper's campaign would see with SLURM's backfill plugin
// disabled, and the baseline the EASY ablation compares against.
type fifoPolicy struct{}

// FIFO returns the first-in-first-out policy without backfill.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Less(a, b *Job) bool { return false }

// keepsSubmissionOrder marks the queue priority as identical to submission
// order, letting the scheduler skip the priority sort on its hot path.
// Policies embedding fifoPolicy (easy, bestfit) inherit it.
func (fifoPolicy) keepsSubmissionOrder() {}

func (fifoPolicy) Backfill() bool { return false }

func (fifoPolicy) BackfillOrder(cands []*Job) []*Job { return cands }

func (fifoPolicy) PickHosts(free []string, job *Job) []string {
	return free[:job.Spec.Nodes]
}
