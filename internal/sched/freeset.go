package sched

import (
	"container/heap"
	"sort"
)

// freeIndex presents the idle node set to the scheduling passes. Both
// implementations report idle hosts in partition order, which keeps
// allocation deterministic.
type freeIndex interface {
	// Count returns the number of idle nodes.
	Count() int
	// Hosts returns the idle hostnames in partition order. The slice is
	// only valid until the next Hosts call: implementations may reuse one
	// scratch buffer, so callers (the policies' PickHosts) must not retain
	// it — the scheduler copies the chosen allocation before the next pass.
	Hosts() []string
	// Add records that the node at partition index idx became idle.
	Add(idx int)
	// Remove records that the node at partition index idx left the idle set.
	Remove(idx int)
}

// indexedFree keeps the idle nodes as a sorted slice of partition indexes,
// maintained incrementally: Count is O(1) and Hosts touches only the idle
// set, so a scheduling pass never rescans the whole partition.
type indexedFree struct {
	order []string
	idx   []int    // idle partition indexes, ascending
	hosts []string // Hosts scratch, reused across scheduling passes
}

func (f *indexedFree) Count() int { return len(f.idx) }

func (f *indexedFree) Hosts() []string {
	// Reuse one scratch buffer: on a 10k-node partition a fresh O(free)
	// slice per job placement dominated the whole campaign's allocation
	// profile. The freeIndex contract forbids callers retaining the result.
	f.hosts = f.hosts[:0]
	for _, n := range f.idx {
		f.hosts = append(f.hosts, f.order[n])
	}
	return f.hosts
}

func (f *indexedFree) Add(n int) {
	i := sort.SearchInts(f.idx, n)
	if i < len(f.idx) && f.idx[i] == n {
		return
	}
	f.idx = append(f.idx, 0)
	copy(f.idx[i+1:], f.idx[i:])
	f.idx[i] = n
}

func (f *indexedFree) Remove(n int) {
	i := sort.SearchInts(f.idx, n)
	if i < len(f.idx) && f.idx[i] == n {
		f.idx = append(f.idx[:i], f.idx[i+1:]...)
	}
}

// linearFree reproduces the seed scheduler's O(nodes) full-partition
// rescan on every query. It exists purely as the ablation baseline for
// the throughput benchmarks (see WithLinearScan).
type linearFree struct{ s *Scheduler }

func (f *linearFree) Count() int {
	n := 0
	for _, h := range f.s.order {
		if f.s.nodes[h].state == NodeIdle {
			n++
		}
	}
	return n
}

func (f *linearFree) Hosts() []string {
	var idle []string
	for _, h := range f.s.order {
		if f.s.nodes[h].state == NodeIdle {
			idle = append(idle, h)
		}
	}
	return idle
}

func (f *linearFree) Add(int) {}

func (f *linearFree) Remove(int) {}

// releaseEntry is one running job's future node release (start time plus
// wall limit).
type releaseEntry struct {
	at    float64
	nodes int
	jobID int
	pos   int // heap position, -1 once removed
}

// releaseHeap is a min-heap on (at, jobID), pushed on job start and pruned
// on job end, so reservation() reads releases without rebuilding them from
// a partition scan.
type releaseHeap []*releaseEntry

func (h releaseHeap) Len() int { return len(h) }

func (h releaseHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].jobID < h[j].jobID
}

func (h releaseHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (h *releaseHeap) Push(x any) {
	e := x.(*releaseEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}

func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	e.pos = -1
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (h *releaseHeap) push(e *releaseEntry) { heap.Push(h, e) }

func (h *releaseHeap) remove(e *releaseEntry) {
	if e.pos >= 0 && e.pos < h.Len() && (*h)[e.pos] == e {
		heap.Remove(h, e.pos)
	}
}

// scratchInto fills dst (reusing its capacity) with a value-copy min-heap
// of the pending releases that can be consumed in (at, jobID) order
// without disturbing the live entries' heap positions. A copy of a heap
// slice is already heap-ordered, so no re-heapify is needed.
func (h releaseHeap) scratchInto(dst scratchHeap) scratchHeap {
	dst = dst[:0]
	for _, e := range h {
		dst = append(dst, *e)
	}
	return dst
}

// scratchHeap is a value-based min-heap over releaseEntry with the same
// ordering as releaseHeap but without position tracking.
type scratchHeap []releaseEntry

func (h scratchHeap) Len() int { return len(h) }

func (h scratchHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].jobID < h[j].jobID
}

func (h scratchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *scratchHeap) Push(x any) { *h = append(*h, x.(releaseEntry)) }

func (h *scratchHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
