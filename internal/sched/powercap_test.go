package sched

import (
	"fmt"
	"testing"

	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/workload"
)

// fakeAdvisor is a deterministic PowerAdvisor for scheduler-level tests.
type fakeAdvisor struct {
	perNodeW   float64
	headroomW  float64
	temps      map[string]float64
	placements []string
}

func (f *fakeAdvisor) PredictedJobWatts(act power.Activity, nodes int) float64 {
	return float64(nodes) * f.perNodeW
}
func (f *fakeAdvisor) HeadroomWatts() float64 { return f.headroomW }
func (f *fakeAdvisor) NodeTempC(host string) float64 {
	if t, ok := f.temps[host]; ok {
		return t
	}
	return 50
}
func (f *fakeAdvisor) NotePlacement(act power.Activity, nodes int) {
	f.placements = append(f.placements, fmt.Sprintf("%.3f/%d", act.CoreActivity, nodes))
}

// TestPowerCapDelaysOverBudgetHead: a job whose predicted draw exceeds
// headroom waits while other work runs, starts once headroom returns via
// Reschedule, and placements are reported to the advisor.
func TestPowerCapDelaysOverBudgetHead(t *testing.T) {
	e := sim.NewEngine()
	adv := &fakeAdvisor{perNodeW: 2, headroomW: 5}
	s, err := New(e, "p", hosts(8), WithPolicy(PowerCap()), WithPowerAdvisor(adv))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(JobSpec{Name: "a", Nodes: 2, TimeLimit: 100, Duration: 50, Workload: workload.MustLookup("hpl")})
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes x 2 W = 8 W > 5 W headroom: must wait even though nodes are
	// free.
	second, err := s.Submit(JobSpec{Name: "b", Nodes: 4, TimeLimit: 100, Duration: 50, Workload: workload.MustLookup("hpl")})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if first.State() != StateRunning {
		t.Fatalf("first job state = %s", first.State())
	}
	if second.State() != StatePending {
		t.Fatalf("over-budget job state = %s, want PENDING", second.State())
	}
	// Headroom returns (the plane would call Reschedule on its control
	// tick).
	adv.headroomW = 20
	s.Reschedule()
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if second.State() != StateRunning {
		t.Fatalf("job still %s after headroom returned", second.State())
	}
	if len(adv.placements) != 2 || adv.placements[0] != "0.465/2" || adv.placements[1] != "0.465/4" {
		t.Errorf("placements reported = %v", adv.placements)
	}
}

// TestPowerCapForcedProgress: an over-budget head is admitted when
// nothing is running, so the queue can never deadlock on the budget.
func TestPowerCapForcedProgress(t *testing.T) {
	e := sim.NewEngine()
	adv := &fakeAdvisor{perNodeW: 10, headroomW: 0}
	s, err := New(e, "p", hosts(4), WithPolicy(PowerCap()), WithPowerAdvisor(adv))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Name: "big", Nodes: 4, TimeLimit: 50, Duration: 10, Workload: workload.MustLookup("hpl")})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateRunning {
		t.Fatalf("idle-cluster job state = %s, want RUNNING (forced progress)", job.State())
	}
}

// TestPowerCapPicksCoolestHosts: allocation prefers the coolest idle
// nodes, stable on ties.
func TestPowerCapPicksCoolestHosts(t *testing.T) {
	e := sim.NewEngine()
	adv := &fakeAdvisor{perNodeW: 0, headroomW: 100, temps: map[string]float64{
		"mc01": 70, "mc02": 40, "mc03": 55, "mc04": 35,
	}}
	s, err := New(e, "p", hosts(4), WithPolicy(PowerCap()), WithPowerAdvisor(adv))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Name: "cool", Nodes: 2, TimeLimit: 50, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	got := job.Hosts()
	if len(got) != 2 || got[0] != "mc04" || got[1] != "mc02" {
		t.Errorf("hosts = %v, want [mc04 mc02] (coolest first)", got)
	}
}

// TestPowerCapWithoutAdvisorIsFIFO: no advisor, no gating — the policy
// degrades to plain FIFO placement in partition order.
func TestPowerCapWithoutAdvisorIsFIFO(t *testing.T) {
	e := sim.NewEngine()
	s, err := New(e, "p", hosts(4), WithPolicy(PowerCap()))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Name: "plain", Nodes: 2, TimeLimit: 50, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	got := job.Hosts()
	if len(got) != 2 || got[0] != "mc01" || got[1] != "mc02" {
		t.Errorf("hosts = %v, want partition order", got)
	}
}
