package sched

import (
	"fmt"
	"testing"

	"montecimone/internal/sim"
)

func hosts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("mc%02d", i+1)
	}
	return out
}

func newSched(t *testing.T, n int, opts ...Option) (*sim.Engine, *Scheduler) {
	t.Helper()
	e := sim.NewEngine()
	s, err := New(e, "cimone", hosts(n), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(nil, "p", hosts(2)); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, "p", nil); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := New(e, "p", []string{"a", "a"}); err == nil {
		t.Error("duplicate hostname accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, s := newSched(t, 4)
	if _, err := s.Submit(JobSpec{Name: "x", Nodes: 0, TimeLimit: 10, Duration: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := s.Submit(JobSpec{Name: "x", Nodes: 5, TimeLimit: 10, Duration: 1}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := s.Submit(JobSpec{Name: "x", Nodes: 1, TimeLimit: 0, Duration: 1}); err == nil {
		t.Error("zero time limit accepted")
	}
	if _, err := s.Submit(JobSpec{Name: "x", Nodes: 1, TimeLimit: 10, Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	e, s := newSched(t, 8)
	var startedHosts []string
	var endState JobState
	job, err := s.Submit(JobSpec{
		Name: "hpl", User: "bench", Nodes: 8, TimeLimit: 100, Duration: 42,
		OnStart: func(_ *Job, h []string) { startedHosts = h },
		OnEnd:   func(_ *Job, st JobState) { endState = st },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateCompleted {
		t.Errorf("state = %s, want COMPLETED", job.State())
	}
	if len(startedHosts) != 8 {
		t.Errorf("allocated %d hosts", len(startedHosts))
	}
	if endState != StateCompleted {
		t.Errorf("OnEnd state = %s", endState)
	}
	if job.EndTime()-job.StartTime() != 42 {
		t.Errorf("runtime = %v, want 42", job.EndTime()-job.StartTime())
	}
	// Nodes return to idle.
	for _, row := range s.Sinfo() {
		if row.State != NodeIdle {
			t.Errorf("node %s state %s after completion", row.Host, row.State)
		}
	}
}

func TestFIFOOrdering(t *testing.T) {
	e, s := newSched(t, 4, WithBackfill(false))
	j1, _ := s.Submit(JobSpec{Name: "a", Nodes: 4, TimeLimit: 100, Duration: 10})
	j2, _ := s.Submit(JobSpec{Name: "b", Nodes: 4, TimeLimit: 100, Duration: 10})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if j1.StartTime() != 0 {
		t.Errorf("j1 start = %v", j1.StartTime())
	}
	if j2.StartTime() != 10 {
		t.Errorf("j2 start = %v, want 10 (after j1)", j2.StartTime())
	}
}

func TestTimeout(t *testing.T) {
	e, s := newSched(t, 2)
	job, _ := s.Submit(JobSpec{Name: "long", Nodes: 1, TimeLimit: 5, Duration: 50})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateTimeout {
		t.Errorf("state = %s, want TIMEOUT", job.State())
	}
	if job.EndTime() != 5 {
		t.Errorf("end = %v, want 5", job.EndTime())
	}
}

func TestBackfillFillsGap(t *testing.T) {
	e, s := newSched(t, 4)
	// j1 occupies 3 nodes for 100 s. j2 (head of queue) needs all 4 and
	// must wait. j3 needs 1 node for 20 s: with its 30 s limit it finishes
	// before j1's wall limit frees the nodes, so backfill starts it now.
	j1, _ := s.Submit(JobSpec{Name: "wide", Nodes: 3, TimeLimit: 100, Duration: 100})
	j2, _ := s.Submit(JobSpec{Name: "huge", Nodes: 4, TimeLimit: 100, Duration: 10})
	j3, _ := s.Submit(JobSpec{Name: "small", Nodes: 1, TimeLimit: 30, Duration: 20})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if j3.StartTime() != 0 {
		t.Errorf("backfill job start = %v, want 0", j3.StartTime())
	}
	if j2.StartTime() < 100 {
		t.Errorf("head job started at %v, before resources free", j2.StartTime())
	}
	_ = j1
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	e, s := newSched(t, 4)
	// j1 holds 3 nodes until t=50 (limit). Head j2 wants 4 nodes -> shadow
	// start t=50. j3 wants 1 node for 200 s: starting it would delay j2
	// beyond its shadow time (and it does not fit in the extra nodes),
	// so it must NOT backfill.
	s.mustSubmit(t, JobSpec{Name: "wide", Nodes: 3, TimeLimit: 50, Duration: 50})
	j2, _ := s.Submit(JobSpec{Name: "head", Nodes: 4, TimeLimit: 50, Duration: 10})
	j3, _ := s.Submit(JobSpec{Name: "greedy", Nodes: 1, TimeLimit: 200, Duration: 200})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if j2.StartTime() != 50 {
		t.Errorf("head start = %v, want 50", j2.StartTime())
	}
	if j3.StartTime() < j2.StartTime() {
		t.Errorf("greedy backfill at %v delayed head (head at %v)", j3.StartTime(), j2.StartTime())
	}
}

// mustSubmit is a test helper asserting submission succeeds.
func (s *Scheduler) mustSubmit(t *testing.T, spec JobSpec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestBackfillDisabled(t *testing.T) {
	e, s := newSched(t, 4, WithBackfill(false))
	s.mustSubmit(t, JobSpec{Name: "wide", Nodes: 3, TimeLimit: 100, Duration: 100})
	s.mustSubmit(t, JobSpec{Name: "huge", Nodes: 4, TimeLimit: 100, Duration: 10})
	j3 := s.mustSubmit(t, JobSpec{Name: "small", Nodes: 1, TimeLimit: 30, Duration: 20})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if j3.StartTime() == 0 {
		t.Error("job backfilled with backfill disabled")
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	e, s := newSched(t, 2)
	j1 := s.mustSubmit(t, JobSpec{Name: "run", Nodes: 2, TimeLimit: 100, Duration: 100})
	j2 := s.mustSubmit(t, JobSpec{Name: "wait", Nodes: 2, TimeLimit: 100, Duration: 10})
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if j2.State() != StateCancelled {
		t.Errorf("pending cancel state = %s", j2.State())
	}
	if err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	if j1.State() != StateCancelled {
		t.Errorf("running cancel state = %s", j1.State())
	}
	if err := s.Cancel(j1.ID); err == nil {
		t.Error("double cancel accepted")
	}
	if err := s.Cancel(999); err == nil {
		t.Error("unknown job cancel accepted")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Sinfo() {
		if row.State != NodeIdle {
			t.Errorf("node %s not idle after cancels", row.Host)
		}
	}
}

func TestNodeFailKillsJob(t *testing.T) {
	// The thermal halt of node 7 during HPL surfaces as NODE_FAIL.
	e, s := newSched(t, 8)
	var failed JobState
	job := s.mustSubmit(t, JobSpec{
		Name: "hpl", Nodes: 8, TimeLimit: 1000, Duration: 500,
		OnEnd: func(_ *Job, st JobState) { failed = st },
	})
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc07"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateNodeFail {
		t.Errorf("state = %s, want NODE_FAIL", job.State())
	}
	if failed != StateNodeFail {
		t.Errorf("OnEnd state = %s", failed)
	}
	// The failed node stays down; others return to idle.
	for _, row := range s.Sinfo() {
		want := NodeIdle
		if row.Host == "mc07" {
			want = NodeDown
		}
		if row.State != want {
			t.Errorf("node %s = %s, want %s", row.Host, row.State, want)
		}
	}
}

func TestNodeFailRequeues(t *testing.T) {
	e, s := newSched(t, 2)
	s.mustSubmit(t, JobSpec{Name: "resilient", Nodes: 2, TimeLimit: 100, Duration: 50, Requeue: true})
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	// Requeued clone is pending (only 1 node up, needs 2).
	rows := s.Squeue()
	if len(rows) != 1 || rows[0].State != StatePending {
		t.Fatalf("squeue = %+v, want one pending clone", rows)
	}
	if err := s.NodeUp("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	acct := s.Sacct()
	if len(acct) != 2 {
		t.Fatalf("sacct rows = %d, want 2", len(acct))
	}
	if acct[0].State != StateNodeFail || acct[1].State != StateCompleted {
		t.Errorf("sacct states = %s, %s", acct[0].State, acct[1].State)
	}
}

func TestNodeDownValidation(t *testing.T) {
	_, s := newSched(t, 2)
	if err := s.NodeDown("nope"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := s.NodeUp("nope"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := s.NodeDown("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc01"); err != nil {
		t.Errorf("idempotent NodeDown failed: %v", err)
	}
}

func TestSqueueAndSinfoViews(t *testing.T) {
	e, s := newSched(t, 4)
	s.mustSubmit(t, JobSpec{Name: "a", User: "u1", Nodes: 4, TimeLimit: 100, Duration: 50})
	s.mustSubmit(t, JobSpec{Name: "b", User: "u2", Nodes: 4, TimeLimit: 100, Duration: 50})
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	rows := s.Squeue()
	if len(rows) != 2 {
		t.Fatalf("squeue rows = %d, want 2", len(rows))
	}
	// Pending first, then running.
	if rows[0].State != StatePending || rows[1].State != StateRunning {
		t.Errorf("squeue order: %s, %s", rows[0].State, rows[1].State)
	}
	allocated := 0
	for _, nr := range s.Sinfo() {
		if nr.State == NodeAlloc {
			allocated++
			if nr.JobID == 0 {
				t.Error("allocated node without job id")
			}
		}
	}
	if allocated != 4 {
		t.Errorf("allocated nodes = %d, want 4", allocated)
	}
	if s.Partition() != "cimone" {
		t.Errorf("partition = %q", s.Partition())
	}
}

func TestManyJobsDrainDeterministically(t *testing.T) {
	run := func() []float64 {
		e, s := newSched(t, 8)
		var jobs []*Job
		for i := 0; i < 20; i++ {
			j := s.mustSubmit(t, JobSpec{
				Name:      fmt.Sprintf("j%d", i),
				Nodes:     1 + i%4,
				TimeLimit: 100 + float64(i),
				Duration:  10 + float64(i%7)*5,
			})
			jobs = append(jobs, j)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		starts := make([]float64, len(jobs))
		for i, j := range jobs {
			if j.State() != StateCompleted {
				t.Fatalf("job %d state %s", j.ID, j.State())
			}
			starts[i] = j.StartTime()
		}
		return starts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d start differs: %v vs %v", i, a[i], b[i])
		}
	}
}
