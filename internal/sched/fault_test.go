package sched

// Regression tests for the fault-campaign scheduler surface: the NodeUp
// reschedule kick, bounded NODE_FAIL requeueing, the OnRequeue hook and
// the runtime-stretch scaler.

import (
	"testing"
)

// TestNodeUpKicksScheduler pins the recovery kick: a job that is pending
// only because every node is down must start as soon as NodeUp returns a
// node to service, with no other scheduler activity in between.
func TestNodeUpKicksScheduler(t *testing.T) {
	e, s := newSched(t, 2)
	for _, h := range hosts(2) {
		if err := s.NodeDown(h); err != nil {
			t.Fatal(err)
		}
	}
	started := false
	s.mustSubmit(t, JobSpec{Name: "waiter", Nodes: 1, TimeLimit: 100, Duration: 10,
		OnStart: func(*Job, []string) { started = true }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started {
		t.Fatal("job started with every node down")
	}
	if err := s.NodeUp("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("NodeUp did not kick the pending job into service")
	}
}

// TestRequeueBounded exercises the retry budget: MaxRequeues=2 allows
// exactly three attempts (the original plus two requeues), each ending in
// NODE_FAIL, and the third failure is final.
func TestRequeueBounded(t *testing.T) {
	e, s := newSched(t, 1)
	fails, attempts := 0, []int{}
	var lastState JobState
	s.mustSubmit(t, JobSpec{Name: "victim", Nodes: 1, TimeLimit: 1000, Duration: 500,
		Requeue: true, MaxRequeues: 2,
		OnStart: func(j *Job, _ []string) { attempts = append(attempts, j.Attempt()) },
		OnEnd: func(_ *Job, st JobState) {
			fails++
			lastState = st
		}})
	for i := 0; i < 4; i++ { // one more crash than the budget allows
		if err := e.RunUntil(100 * float64(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := s.NodeDown("mc01"); err != nil {
			t.Fatal(err)
		}
		if err := s.NodeUp("mc01"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fails != 3 || lastState != StateNodeFail {
		t.Fatalf("got %d NODE_FAIL endings (last %s), want 3 attempts all NODE_FAIL", fails, lastState)
	}
	if len(attempts) != 3 || attempts[0] != 0 || attempts[1] != 1 || attempts[2] != 2 {
		t.Fatalf("attempt numbering = %v, want [0 1 2]", attempts)
	}
}

// TestOnRequeueMutatesClone checks the checkpoint hook contract: the
// requeued clone runs with whatever spec OnRequeue left behind (here a
// shortened duration standing in for a restart from checkpoint).
func TestOnRequeueMutatesClone(t *testing.T) {
	e, s := newSched(t, 1)
	var start, end float64
	done := false
	s.mustSubmit(t, JobSpec{Name: "ckpt", Nodes: 1, TimeLimit: 1000, Duration: 500,
		Requeue: true, MaxRequeues: 3,
		OnRequeue: func(failed *Job, next *JobSpec) {
			if failed.Attempt() != 0 {
				t.Fatalf("unexpected requeue of attempt %d", failed.Attempt())
			}
			next.Duration = 40 // resume near the end
		},
		OnStart: func(j *Job, _ []string) { start = e.Now() },
		OnEnd: func(_ *Job, st JobState) {
			if st == StateCompleted {
				end = e.Now()
				done = true
			}
		}})
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeDown("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := s.NodeUp("mc01"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("requeued clone never completed")
	}
	if got := end - start; got != 40 {
		t.Fatalf("clone ran %.1f s, want the mutated 40 s duration", got)
	}
}

// TestRuntimeScalerStretchesIntoTimeout: a 3x stretch pushes a job past
// its wall limit, so it ends in TIMEOUT at exactly the limit, and the job
// reports the applied scale.
func TestRuntimeScalerStretchesIntoTimeout(t *testing.T) {
	e, s := newSched(t, 1, WithRuntimeScaler(func(*Job, []string) float64 { return 3 }))
	var scale float64
	var start, end float64
	var final JobState
	s.mustSubmit(t, JobSpec{Name: "slow", Nodes: 1, TimeLimit: 20, Duration: 10,
		OnStart: func(j *Job, _ []string) { start, scale = e.Now(), j.RuntimeScale() },
		OnEnd:   func(_ *Job, st JobState) { end, final = e.Now(), st }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if scale != 3 {
		t.Fatalf("RuntimeScale = %v, want 3", scale)
	}
	if final != StateTimeout || end-start != 20 {
		t.Fatalf("job ended %s after %.1f s, want TIMEOUT at the 20 s wall limit", final, end-start)
	}
}

// TestRuntimeScalerSetterEquivalent pins SetRuntimeScaler (the
// post-construction install the campaign runner uses) to the option path:
// a sub-limit stretch lengthens the run without tripping the limit.
func TestRuntimeScalerSetterEquivalent(t *testing.T) {
	e, s := newSched(t, 1)
	s.SetRuntimeScaler(func(*Job, []string) float64 { return 1.5 })
	var start, end float64
	var final JobState
	s.mustSubmit(t, JobSpec{Name: "slowish", Nodes: 1, TimeLimit: 20, Duration: 10,
		OnStart: func(*Job, []string) { start = e.Now() },
		OnEnd:   func(_ *Job, st JobState) { end, final = e.Now(), st }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if final != StateCompleted || end-start != 15 {
		t.Fatalf("job ended %s after %.1f s, want COMPLETED after 15 s", final, end-start)
	}
}
