package sched

import (
	"fmt"

	"montecimone/internal/power"
)

// Policy customises the scheduler's three decision points: the priority
// order of the pending queue, the hosts allocated to a starting job, and
// the backfill pass behind a blocked head (whether it runs and in which
// order candidates are tried).
//
// Whatever the policy, when the highest-priority pending job cannot start
// the engine computes an EASY reservation for it (shadow time plus
// spare-node budget) and no backfill admission may delay that reservation.
// For policies that keep submission order (fifo, easy, bestfit) this makes
// every job start eventually even under continuous arrivals; a reordering
// policy such as sjf protects only its own priority head, so jobs it
// deprioritises can wait as long as higher-priority work keeps arriving
// (they still run on any finite workload).
type Policy interface {
	// Name identifies the policy ("easy", "fifo", ...).
	Name() string
	// Less reports whether job a has strictly higher queue priority than
	// b. The scheduler sorts the pending queue with a stable sort, so
	// equal priorities keep submission order.
	Less(a, b *Job) bool
	// Backfill reports whether a backfill pass runs behind a blocked head.
	Backfill() bool
	// BackfillOrder returns the order in which backfill candidates are
	// tried. cands holds the pending jobs behind the head in queue
	// priority order and must not be mutated in place.
	BackfillOrder(cands []*Job) []*Job
	// PickHosts selects job.Spec.Nodes hosts for a starting job. free
	// lists the idle hostnames in partition order; the returned hosts must
	// be distinct members of free.
	PickHosts(free []string, job *Job) []string
}

// PolicyNames lists the registered policy names in presentation order.
func PolicyNames() []string { return []string{"fifo", "easy", "sjf", "bestfit", "powercap"} }

// PolicyByName resolves a registered policy by name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fifo":
		return FIFO(), nil
	case "easy":
		return EASY(), nil
	case "sjf":
		return SJF(), nil
	case "bestfit":
		return BestFit(), nil
	case "powercap":
		return PowerCap(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (have %v)", name, PolicyNames())
}

// PowerAdvisor supplies the power-plane knowledge power-aware policies
// decide with. The cluster power governor implements it; the scheduler
// stays free of any physics or telemetry dependency.
type PowerAdvisor interface {
	// PredictedJobWatts returns the predicted incremental cluster draw
	// (watts) of placing a job with the given steady activity profile
	// (JobSpec.Activity — the workload model's calibrated Table VI
	// column) on the given node count: the rail model evaluated at that
	// activity, minus the idle draw the nodes already contribute.
	PredictedJobWatts(act power.Activity, nodes int) float64
	// HeadroomWatts returns the budget headroom currently available for
	// new placements (budget minus measured draw minus unexpired
	// placement reservations).
	HeadroomWatts() float64
	// NodeTempC returns a node's SoC junction temperature, for
	// cooler-node-first placement.
	NodeTempC(host string) float64
	// NotePlacement records that a job with the given activity profile
	// was just placed on the given node count, reserving its predicted
	// watts until the measured draw catches up.
	NotePlacement(act power.Activity, nodes int)
}

// PowerAwarePolicy is implemented by policies that consult a PowerAdvisor
// (installed via WithPowerAdvisor).
type PowerAwarePolicy interface {
	Policy
	SetAdvisor(PowerAdvisor)
}

// admissionGate is implemented by policies that can refuse (delay) the
// start of a job that fits node-wise — the power-budget gate. runningJobs
// is the number of jobs currently executing; a gate must admit when it is
// zero, or an over-budget head could starve the whole queue.
type admissionGate interface {
	Admit(job *Job, runningJobs int) bool
}

// Option configures the scheduler.
type Option interface{ apply(*Scheduler) }

type policyOption struct{ p Policy }

func (o policyOption) apply(s *Scheduler) { s.policy = o.p }

// WithPolicy selects the scheduling policy (default EASY).
func WithPolicy(p Policy) Option { return policyOption{p} }

// WithBackfill enables or disables EASY backfill (default on, as in the
// production SLURM configuration). It is legacy sugar for
// WithPolicy(EASY()) / WithPolicy(FIFO()).
func WithBackfill(enabled bool) Option {
	if enabled {
		return WithPolicy(EASY())
	}
	return WithPolicy(FIFO())
}

type advisorOption struct{ a PowerAdvisor }

func (o advisorOption) apply(s *Scheduler) { s.advisor = o.a }

// WithPowerAdvisor installs the power plane's advisor: power-aware
// policies gate admissions on it and prefer cooler nodes, and every
// placement is reported back so the plane can reserve budget until its
// measurements catch up. Policies that are not power-aware ignore it.
func WithPowerAdvisor(a PowerAdvisor) Option { return advisorOption{a} }

type runtimeScalerOption struct {
	fn func(job *Job, hosts []string) float64
}

func (o runtimeScalerOption) apply(s *Scheduler) { s.runtimeScale = o.fn }

// WithRuntimeScaler installs a runtime-stretch hook consulted once per job
// start with the job and its allocation: the returned factor (> 1
// stretches, <= 1 is clamped to 1) multiplies the job's modelled execution
// time before the wall-time limit is applied, so a stretched job can run
// into TIMEOUT exactly as a straggler-slowed or network-degraded job
// would. Fault campaigns are the intended caller; without the option the
// scheduler behaves exactly as before.
func WithRuntimeScaler(fn func(job *Job, hosts []string) float64) Option {
	return runtimeScalerOption{fn}
}

// SetRuntimeScaler installs or replaces the runtime-stretch hook after
// construction (see WithRuntimeScaler). The campaign runner uses it: the
// fault controller that supplies the factor only exists once the system —
// and with it the scheduler — is already assembled.
func (s *Scheduler) SetRuntimeScaler(fn func(job *Job, hosts []string) float64) { s.runtimeScale = fn }

type linearScanOption bool

func (o linearScanOption) apply(s *Scheduler) { s.linearScan = bool(o) }

// WithLinearScan reinstates the seed scheduler's O(nodes) partition
// rescans for the idle set and the reservation computation. It exists as
// the ablation baseline for the scheduler-throughput benchmarks and has no
// other use.
func WithLinearScan(enabled bool) Option { return linearScanOption(enabled) }
