package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	hplSoCWatts  = 5.935 // Table VI HPL total
	idleSoCWatts = 4.810 // Table VI idle total
)

func TestEnvironmentBounds(t *testing.T) {
	enc := DefaultEnclosure()
	if _, err := Environment(enc, -1); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := Environment(enc, NumSlots); err == nil {
		t.Error("slot beyond range accepted")
	}
	for slot := 0; slot < NumSlots; slot++ {
		if _, err := Environment(enc, slot); err != nil {
			t.Errorf("slot %d: %v", slot, err)
		}
	}
}

func TestCentreSlotsHotterLidOn(t *testing.T) {
	// Fig. 6 observation: nodes in the centre blades are significantly
	// hotter than the outer ones.
	enc := DefaultEnclosure()
	steady := func(slot int) float64 {
		m, err := NewModel(enc, slot)
		if err != nil {
			t.Fatal(err)
		}
		temp, _ := m.SteadyStateCPU(hplSoCWatts)
		return temp
	}
	outer := steady(0)
	centre := steady(2)
	if centre-outer < 10 {
		t.Errorf("centre slot %.1f degC not significantly hotter than outer %.1f degC", centre, outer)
	}
}

func TestHotCentreSlotSteady71(t *testing.T) {
	// Before mitigation the hotter (stable) nodes sat at ~71 degC.
	m, err := NewModel(DefaultEnclosure(), 2)
	if err != nil {
		t.Fatal(err)
	}
	temp, stable := m.SteadyStateCPU(hplSoCWatts)
	if !stable {
		t.Fatal("centre slot must be stable under HPL")
	}
	if math.Abs(temp-71) > 1.5 {
		t.Errorf("centre slot HPL steady = %.1f degC, want ~71", temp)
	}
}

func TestNode7RunawayUnderHPL(t *testing.T) {
	// Node 7 (slot index 6) has no stable equilibrium under HPL load with
	// the lid on: it must run away and trip at 107 degC.
	m, err := NewModel(DefaultEnclosure(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if temp, stable := m.SteadyStateCPU(hplSoCWatts); stable {
		t.Fatalf("slot 7 unexpectedly stable at %.1f degC under HPL", temp)
	}
	// But it is stable (hot) at idle: the hazard appears only under load.
	if temp, stable := m.SteadyStateCPU(idleSoCWatts); !stable {
		t.Error("slot 7 should be stable at idle")
	} else if temp < 80 || temp > 100 {
		t.Errorf("slot 7 idle steady = %.1f degC, want hot but below trip", temp)
	}
}

func TestNode7TripsDynamically(t *testing.T) {
	m, err := NewModel(DefaultEnclosure(), 6)
	if err != nil {
		t.Fatal(err)
	}
	tripAt := -1.0
	for now := 0.0; now < 3600; now += 0.5 {
		m.Step(0.5, hplSoCWatts, 1.0)
		if m.Tripped() {
			tripAt = now
			break
		}
	}
	if tripAt < 0 {
		t.Fatal("node 7 never tripped under sustained HPL")
	}
	if tripAt < 60 {
		t.Errorf("trip after %.0f s: runaway should take minutes, not seconds", tripAt)
	}
	if got := m.Temp(SensorCPU); got != TripTempC {
		t.Errorf("tripped CPU temp = %.1f, want saturation at %.0f", got, TripTempC)
	}
}

func TestMitigationDropsHottestNodeTo39(t *testing.T) {
	// Fig. 6: removing the lid dropped the hotter node from 71 to 39 degC.
	enc := Enclosure{AmbientC: 25, LidOn: false}
	m, err := NewModel(enc, 6)
	if err != nil {
		t.Fatal(err)
	}
	temp, stable := m.SteadyStateCPU(hplSoCWatts)
	if !stable {
		t.Fatal("mitigated slot 7 must be stable under HPL")
	}
	if math.Abs(temp-39) > 1.0 {
		t.Errorf("mitigated slot 7 HPL steady = %.1f degC, want ~39", temp)
	}
	// All slots must be stable and under 45 degC after mitigation.
	for slot := 0; slot < NumSlots; slot++ {
		sm, err := NewModel(enc, slot)
		if err != nil {
			t.Fatal(err)
		}
		st, ok := sm.SteadyStateCPU(hplSoCWatts)
		if !ok || st > 45 {
			t.Errorf("slot %d post-mitigation steady = %.1f (stable=%v)", slot, st, ok)
		}
	}
}

func TestSetEnclosureRelaxesTemperature(t *testing.T) {
	// Apply the mitigation to a hot running node and watch it cool.
	m, err := NewModel(DefaultEnclosure(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2400; i++ { // 20 min heat-up under HPL
		m.Step(0.5, hplSoCWatts, 1.0)
	}
	hot := m.Temp(SensorCPU)
	if hot < 65 {
		t.Fatalf("node did not heat up: %.1f degC", hot)
	}
	if err := m.SetEnclosure(Enclosure{AmbientC: 25, LidOn: false}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2400; i++ {
		m.Step(0.5, hplSoCWatts, 1.0)
	}
	cool := m.Temp(SensorCPU)
	if cool > 42 {
		t.Errorf("post-mitigation temperature = %.1f degC, want < 42", cool)
	}
	if hot-cool < 25 {
		t.Errorf("mitigation only dropped %.1f K", hot-cool)
	}
}

func TestSensorsDistinct(t *testing.T) {
	m, err := NewModel(DefaultEnclosure(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4800; i++ {
		m.Step(0.5, hplSoCWatts, 1.2)
	}
	cpu, mb, nvme := m.Temp(SensorCPU), m.Temp(SensorMB), m.Temp(SensorNVMe)
	if !(cpu > mb) {
		t.Errorf("cpu %.1f should exceed mb %.1f under load", cpu, mb)
	}
	if nvme <= DefaultEnclosure().AmbientC {
		t.Errorf("nvme %.1f should sit above ambient", nvme)
	}
}

func TestSensorString(t *testing.T) {
	want := map[Sensor]string{SensorCPU: "cpu_temp", SensorMB: "mb_temp", SensorNVMe: "nvme_temp"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if Sensor(9).String() != "Sensor(9)" {
		t.Error("unknown sensor string")
	}
	if Sensor(9).String() != "Sensor(9)" || (&Model{}).Temp(Sensor(9)) != 0 {
		t.Error("unknown sensor must read 0")
	}
}

func TestClearTrip(t *testing.T) {
	m, err := NewModel(DefaultEnclosure(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7200 && !m.Tripped(); i++ {
		m.Step(0.5, hplSoCWatts, 1.0)
	}
	if !m.Tripped() {
		t.Fatal("expected trip")
	}
	m.ClearTrip()
	if m.Tripped() {
		t.Error("ClearTrip did not reset the latch")
	}
}

func TestStepZeroOrNegativeDtNoop(t *testing.T) {
	m, err := NewModel(DefaultEnclosure(), 0)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Temp(SensorCPU)
	m.Step(0, 100, 100)
	m.Step(-5, 100, 100)
	if m.Temp(SensorCPU) != before {
		t.Error("non-positive dt must not advance the model")
	}
}

func TestLargeStepStable(t *testing.T) {
	// Explicit Euler with dt >> tau must not oscillate or explode.
	m, err := NewModel(DefaultEnclosure(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Step(500, idleSoCWatts, 0.5)
		if math.IsNaN(m.Temp(SensorCPU)) || m.Temp(SensorCPU) > TripTempC+1 {
			t.Fatalf("model unstable at step %d: %v", i, m.Temp(SensorCPU))
		}
	}
	want, _ := m.SteadyStateCPU(idleSoCWatts)
	if math.Abs(m.Temp(SensorCPU)-want) > 1.0 {
		t.Errorf("large-step steady = %.2f, want %.2f", m.Temp(SensorCPU), want)
	}
}

// Property: temperatures increase monotonically with power at steady state
// (for stable slots), and steady state never sits below slot air temp.
func TestSteadyStateMonotoneProperty(t *testing.T) {
	enc := Enclosure{AmbientC: 25, LidOn: false} // all slots stable
	prop := func(slotRaw, pRaw uint8) bool {
		slot := int(slotRaw) % NumSlots
		p := float64(pRaw) / 255 * 6 // 0..6 W
		m, err := NewModel(enc, slot)
		if err != nil {
			return false
		}
		t1, ok1 := m.SteadyStateCPU(p)
		t2, ok2 := m.SteadyStateCPU(p + 0.5)
		if !ok1 || !ok2 {
			return false
		}
		env, _ := Environment(enc, slot)
		return t2 > t1 && t1 >= enc.AmbientC+env.AirRiseC-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dynamics converge to SteadyStateCPU for stable slots from any
// starting condition reachable by the model.
func TestDynamicsConvergeProperty(t *testing.T) {
	enc := Enclosure{AmbientC: 25, LidOn: false}
	prop := func(slotRaw uint8, pRaw uint8) bool {
		slot := int(slotRaw) % NumSlots
		p := 1 + float64(pRaw)/255*5
		m, err := NewModel(enc, slot)
		if err != nil {
			return false
		}
		want, ok := m.SteadyStateCPU(p)
		if !ok {
			return false
		}
		for i := 0; i < 4000; i++ {
			m.Step(1.0, p, 0.5)
		}
		return math.Abs(m.Temp(SensorCPU)-want) < 0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
