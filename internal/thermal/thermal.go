// Package thermal models the thermal behaviour of the Monte Cimone blades.
//
// Each E4 RV007 blade is a 1U case holding two HiFive Unmatched boards and
// two 250 W PSUs. The paper reports (Fig. 6) that with the original lid-on
// enclosure the nodes in the centre blades ran significantly hotter than
// the rest because of a suboptimal airflow design that failed to remove the
// PSU heat, and that node 7 entered a thermal runaway during the first HPL
// runs, reaching 107 degC and halting. Removing the lid and increasing the
// vertical blade spacing dropped the hottest node from 71 degC to 39 degC.
//
// The model is a first-order RC network per sensor (SoC, motherboard, NVMe)
// with a per-slot inlet-air rise and junction-to-air resistance, plus an
// exponential leakage-temperature feedback (leakage power doubling every
// ~22 K, the usual silicon rule of thumb) that produces genuine thermal
// runaway — not merely a high steady state — on the obstructed slot of
// node 7.
package thermal

import (
	"fmt"
	"math"
)

// Sensor identifies one of the three on-board temperature sensors exposed
// through the hwmon sysfs interface (Table IV).
type Sensor int

// The three sensors of Table IV.
const (
	SensorCPU  Sensor = iota + 1 // SoC junction (hwmon1/temp2_input)
	SensorMB                     // motherboard   (hwmon1/temp1_input)
	SensorNVMe                   // NVMe SSD      (hwmon0/temp1_input)
)

// String returns the paper's sensor name.
func (s Sensor) String() string {
	switch s {
	case SensorCPU:
		return "cpu_temp"
	case SensorMB:
		return "mb_temp"
	case SensorNVMe:
		return "nvme_temp"
	default:
		return fmt.Sprintf("Sensor(%d)", int(s))
	}
}

// Sensors lists all three sensors.
var Sensors = []Sensor{SensorCPU, SensorMB, SensorNVMe}

// TripTempC is the SoC temperature at which a node halts execution; the
// paper observed node 7 stop at 107 degC.
const TripTempC = 107.0

// Enclosure describes the chassis configuration.
type Enclosure struct {
	// AmbientC is the machine-room inlet temperature.
	AmbientC float64
	// LidOn selects the original (faulty) airflow configuration; false is
	// the paper's mitigation (lid removed, increased vertical spacing).
	LidOn bool
}

// DefaultEnclosure returns the original configuration the cluster was first
// assembled with: 25 degC room, lids on.
func DefaultEnclosure() Enclosure {
	return Enclosure{AmbientC: 25, LidOn: true}
}

// SlotEnv is the thermal environment of one node slot.
type SlotEnv struct {
	// AirRiseC is the slot's inlet-air temperature rise over ambient
	// caused by PSU and neighbour heat.
	AirRiseC float64
	// RthKW is the SoC junction-to-air thermal resistance in K/W;
	// obstructed airflow raises it.
	RthKW float64
}

// NumSlots is the number of compute-node slots (eight nodes, four blades).
const NumSlots = 8

// Per-slot environments, lid on. Blades hold node pairs (1,2) (3,4) (5,6)
// (7,8); the centre of the stack runs hottest and the slot of node 7 sits
// in the PSU exhaust path — the airflow defect the paper discovered.
// Calibrated so steady HPL temperature is ~71 degC on the hot centre slots
// and supercritical (runaway to the 107 degC trip) on slot 7; see
// EXPERIMENTS.md for the calibration.
var lidOnEnv = [NumSlots]SlotEnv{
	{AirRiseC: 8, RthKW: 2.80},  // node 1
	{AirRiseC: 9, RthKW: 2.80},  // node 2
	{AirRiseC: 16, RthKW: 4.18}, // node 3 (centre)
	{AirRiseC: 16, RthKW: 4.18}, // node 4 (centre)
	{AirRiseC: 16, RthKW: 4.18}, // node 5 (centre)
	{AirRiseC: 16, RthKW: 4.18}, // node 6 (centre)
	{AirRiseC: 18, RthKW: 5.96}, // node 7 (PSU exhaust path: runaway under load)
	{AirRiseC: 10, RthKW: 3.00}, // node 8
}

// Per-slot environments after the mitigation (lid off, wider spacing).
var lidOffEnv = [NumSlots]SlotEnv{
	{AirRiseC: 1, RthKW: 1.90},
	{AirRiseC: 1, RthKW: 1.90},
	{AirRiseC: 2, RthKW: 2.00},
	{AirRiseC: 2, RthKW: 2.00},
	{AirRiseC: 2, RthKW: 2.00},
	{AirRiseC: 2, RthKW: 2.00},
	{AirRiseC: 2, RthKW: 2.08}, // hottest node lands at ~39 degC under HPL
	{AirRiseC: 1, RthKW: 1.95},
}

// Environment returns the slot environment for a 0-based slot index under
// the given enclosure configuration.
func Environment(enc Enclosure, slot int) (SlotEnv, error) {
	if slot < 0 || slot >= NumSlots {
		return SlotEnv{}, fmt.Errorf("thermal: slot %d out of range [0,%d)", slot, NumSlots)
	}
	if enc.LidOn {
		return lidOnEnv[slot], nil
	}
	return lidOffEnv[slot], nil
}

// Leakage feedback constants: the SoC's leakage component (0.984 W measured
// in boot region R1, at a junction near refTempC) doubles every
// leakDoubleC kelvin.
const (
	leakRefW    = 0.984
	refTempC    = 45.0
	leakDoubleC = 22.0
)

// effectivePower adds the temperature-dependent leakage excess to a rail
// power that was measured near refTempC. A powered-off node (socW <= 0)
// dissipates nothing, and the correction never drives a powered node below
// a tenth of its measured draw.
func effectivePower(socW, tempC float64) float64 {
	if socW <= 0 {
		return 0
	}
	p := socW + leakRefW*(math.Exp2((tempC-refTempC)/leakDoubleC)-1)
	if floor := 0.1 * socW; p < floor {
		return floor
	}
	return p
}

// Thermal time constants (seconds) for the first-order sensor dynamics.
const (
	tauCPU  = 40.0  // small heatsink with top fan
	tauMB   = 150.0 // board copper mass
	tauNVMe = 90.0
)

// Model tracks the three sensor temperatures of one node.
type Model struct {
	enc  Enclosure
	env  SlotEnv
	slot int

	// Airflow-fault injection (chaos campaigns): extra junction-to-air
	// resistance and inlet-air rise layered on top of the slot environment,
	// modelling a failed fan or a blocked exhaust path. Large enough values
	// leave the SoC with no equilibrium below the trip point — the same
	// genuine runaway mechanism the slot of node 7 exhibits under load.
	faultRthKW    float64
	faultAirRiseC float64

	cpuC  float64
	mbC   float64
	nvmeC float64

	tripped bool
}

// NewModel returns a node thermal model for the given slot, initialised to
// the slot's zero-power air temperatures (a cold, powered-off node).
func NewModel(enc Enclosure, slot int) (*Model, error) {
	env, err := Environment(enc, slot)
	if err != nil {
		return nil, err
	}
	return &Model{
		enc:   enc,
		env:   env,
		slot:  slot,
		cpuC:  enc.AmbientC + env.AirRiseC,
		mbC:   enc.AmbientC + 0.8*env.AirRiseC,
		nvmeC: enc.AmbientC + 0.5*env.AirRiseC,
	}, nil
}

// Slot returns the 0-based slot index the model was built for.
func (m *Model) Slot() int { return m.slot }

// SetEnclosure switches the enclosure configuration in place (the paper's
// mitigation was applied to the assembled cluster); temperatures then relax
// towards the new equilibria.
func (m *Model) SetEnclosure(enc Enclosure) error {
	env, err := Environment(enc, m.slot)
	if err != nil {
		return err
	}
	m.enc = enc
	m.env = env
	return nil
}

// InjectAirflowFault layers an airflow defect onto the slot environment:
// extraRthKW of junction-to-air resistance and extraAirRiseC of inlet-air
// rise (a failed fan, a blocked exhaust). The fault shifts every
// equilibrium the model solves — Step, Steady, TimeToReach and the
// runaway check all see it — so a sufficiently large fault drives the
// node through the exact 107 degC trip path the paper observed on node 7.
// Negative values are clamped to zero.
func (m *Model) InjectAirflowFault(extraRthKW, extraAirRiseC float64) {
	if extraRthKW < 0 {
		extraRthKW = 0
	}
	if extraAirRiseC < 0 {
		extraAirRiseC = 0
	}
	m.faultRthKW = extraRthKW
	m.faultAirRiseC = extraAirRiseC
}

// ClearAirflowFault removes an injected airflow defect (the repair half of
// a fault cycle; the node still needs a power cycle to clear the latch).
func (m *Model) ClearAirflowFault() { m.faultRthKW, m.faultAirRiseC = 0, 0 }

// AirflowFaulted reports whether an airflow fault is currently injected.
func (m *Model) AirflowFaulted() bool { return m.faultRthKW > 0 || m.faultAirRiseC > 0 }

// airRiseC and rthKW are the effective slot parameters including any
// injected airflow fault.
func (m *Model) airRiseC() float64 { return m.env.AirRiseC + m.faultAirRiseC }
func (m *Model) rthKW() float64    { return m.env.RthKW + m.faultRthKW }

// Step advances the model by dt seconds with the node drawing socW on the
// SoC rails and nvmeW on the NVMe device. Once the SoC crosses the trip
// temperature the trip latches and the temperature saturates there (the
// node halts, power collapses and the real die would cool; the latch is
// what the cluster reacts to).
func (m *Model) Step(dt, socW, nvmeW float64) {
	if dt <= 0 {
		return
	}
	air := m.enc.AmbientC + m.airRiseC()
	cpuSS := air + m.rthKW()*effectivePower(socW, m.cpuC)
	mbSS := m.enc.AmbientC + 0.8*m.airRiseC() + 1.2*socW
	nvmeSS := m.enc.AmbientC + 0.5*m.airRiseC() + 8.0*nvmeW

	m.cpuC += (cpuSS - m.cpuC) * clampStep(dt/tauCPU)
	m.mbC += (mbSS - m.mbC) * clampStep(dt/tauMB)
	m.nvmeC += (nvmeSS - m.nvmeC) * clampStep(dt/tauNVMe)

	if m.cpuC >= TripTempC {
		m.cpuC = TripTempC
		m.tripped = true
	}
}

// clampStep keeps the explicit Euler update stable for large dt.
func clampStep(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// Temp returns the current temperature of a sensor in degC.
func (m *Model) Temp(s Sensor) float64 {
	switch s {
	case SensorCPU:
		return m.cpuC
	case SensorMB:
		return m.mbC
	case SensorNVMe:
		return m.nvmeC
	default:
		return 0
	}
}

// Tripped reports whether the SoC hit the 107 degC thermal hazard; the
// condition is latched until ClearTrip.
func (m *Model) Tripped() bool { return m.tripped }

// ClearTrip resets the latched trip (node power-cycled after cooling).
func (m *Model) ClearTrip() { m.tripped = false }

// Steady is the equilibrium temperature vector for a constant power input.
type Steady struct {
	CPU, MB, NVMe float64
}

// Steady solves the equilibrium of all three sensors for constant socW and
// nvmeW. Stable is false when the SoC has no equilibrium below the trip
// point (thermal runaway); CPU then holds the trip temperature.
func (m *Model) Steady(socW, nvmeW float64) (Steady, bool) {
	cpu, stable := m.SteadyStateCPU(socW)
	return Steady{
		CPU:  cpu,
		MB:   m.enc.AmbientC + 0.8*m.airRiseC() + 1.2*socW,
		NVMe: m.enc.AmbientC + 0.5*m.airRiseC() + 8.0*nvmeW,
	}, stable
}

// Quiescent reports whether all three sensors sit within eps of the stable
// equilibrium for the given constant inputs. A slot in runaway (no stable
// equilibrium) is never quiescent.
func (m *Model) Quiescent(socW, nvmeW, eps float64) bool {
	ss, stable := m.Steady(socW, nvmeW)
	return stable && m.NearSteady(ss, eps)
}

// NearSteady reports whether all three sensors sit within eps of the
// given (caller-solved, typically cached) equilibrium.
func (m *Model) NearSteady(ss Steady, eps float64) bool {
	return math.Abs(m.cpuC-ss.CPU) <= eps &&
		math.Abs(m.mbC-ss.MB) <= eps &&
		math.Abs(m.nvmeC-ss.NVMe) <= eps
}

// Relax advances the model by dt seconds using the closed-form exponential
// solution towards the constant-input equilibrium instead of Euler
// substeps. It is only accurate when the model is already quiescent for
// these inputs (the equilibria are then effectively constant over the
// step); callers gate it on Quiescent. The trip latch cannot engage here:
// quiescence implies a stable equilibrium below the trip point.
func (m *Model) Relax(dt, socW, nvmeW float64) {
	ss, _ := m.Steady(socW, nvmeW)
	m.RelaxToward(dt, ss)
}

// RelaxToward is Relax with a caller-solved (typically cached) equilibrium.
func (m *Model) RelaxToward(dt float64, ss Steady) {
	if dt <= 0 {
		return
	}
	m.cpuC = ss.CPU + (m.cpuC-ss.CPU)*math.Exp(-dt/tauCPU)
	m.mbC = ss.MB + (m.mbC-ss.MB)*math.Exp(-dt/tauMB)
	m.nvmeC = ss.NVMe + (m.nvmeC-ss.NVMe)*math.Exp(-dt/tauNVMe)
}

// TimeToReach returns a conservative lower bound (in seconds) on the time
// for the SoC sensor to first reach targetC under constant socW, or +Inf
// when the trajectory can never get there. The bound uses the largest
// instantaneous equilibrium the leakage feedback can produce below the
// trip point, so the true crossing always happens at or after the returned
// time — watchdog wakeups based on it can only be early, never late.
func (m *Model) TimeToReach(socW, targetC float64) float64 {
	if m.cpuC >= targetC {
		return 0
	}
	air := m.enc.AmbientC + m.airRiseC()
	ssBound := air + m.rthKW()*effectivePower(socW, TripTempC)
	if ssBound <= targetC {
		return math.Inf(1)
	}
	return tauCPU * math.Log((ssBound-m.cpuC)/(ssBound-targetC))
}

// SteadyStateCPU solves the equilibrium SoC temperature for a constant
// power draw, accounting for the leakage feedback. The boolean is false
// when the slot has no stable equilibrium below the trip point (thermal
// runaway), in which case the trip temperature is returned.
func (m *Model) SteadyStateCPU(socW float64) (float64, bool) {
	air := m.enc.AmbientC + m.airRiseC()
	t := air
	for i := 0; i < 500; i++ {
		next := air + m.rthKW()*effectivePower(socW, t)
		if next >= TripTempC {
			return TripTempC, false
		}
		if math.Abs(next-t) < 1e-9 {
			return next, true
		}
		t = next
	}
	return t, true
}
