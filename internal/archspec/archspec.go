// Package archspec reimplements the microarchitecture detection and
// labelling library the paper relies on (Culpo et al., archspec 0.1.3):
// a database of microarchitecture labels with compatibility chains and
// per-compiler optimisation flags. The paper notes that explicit support
// for the linux-sifive-u74mc target triple was already present upstream
// and worked without modification; this package encodes that target along
// with the comparison machines'.
package archspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Microarch describes one microarchitecture entry.
type Microarch struct {
	// Name is the archspec label ("u74mc", "power9le", "thunderx2").
	Name string
	// Vendor is the silicon vendor.
	Vendor string
	// Family is the ISA family label ("riscv64", "ppc64le", "aarch64",
	// "x86_64").
	Family string
	// Parents lists the labels this microarchitecture is backward
	// compatible with, nearest first.
	Parents []string
	// Features lists ISA feature strings.
	Features []string
	// compilerFlags maps compiler name to minimum-version/flag pairs.
	compilerFlags map[string][]versionedFlags
}

type versionedFlags struct {
	minMajor int
	flags    string
}

// db is the built-in microarchitecture database.
var db = buildDB()

func buildDB() map[string]*Microarch {
	entries := []*Microarch{
		{
			Name: "riscv64", Vendor: "generic", Family: "riscv64",
			Features: []string{"rv64i", "m", "a", "f", "d", "c"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 7, flags: "-march=rv64gc"}},
			},
		},
		{
			Name: "u74mc", Vendor: "sifive", Family: "riscv64",
			Parents:  []string{"riscv64"},
			Features: []string{"rv64i", "m", "a", "f", "d", "c", "zba", "zbb"},
			compilerFlags: map[string][]versionedFlags{
				// GCC 10.3 (the deployed toolchain) can tune for the
				// 7-series pipeline but cannot emit Zba/Zbb; minimal
				// bit-manipulation code generation landed in GCC 12.
				"gcc": {
					{minMajor: 10, flags: "-march=rv64gc -mtune=sifive-7-series"},
					{minMajor: 12, flags: "-march=rv64gc_zba_zbb -mtune=sifive-7-series"},
				},
			},
		},
		{
			Name: "ppc64le", Vendor: "generic", Family: "ppc64le",
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 7, flags: "-mcpu=powerpc64le"}},
			},
		},
		{
			Name: "power9le", Vendor: "ibm", Family: "ppc64le",
			Parents:  []string{"power8le", "ppc64le"},
			Features: []string{"vsx", "altivec", "htm"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 7, flags: "-mcpu=power9 -mtune=power9"}},
			},
		},
		{
			Name: "power8le", Vendor: "ibm", Family: "ppc64le",
			Parents: []string{"ppc64le"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 6, flags: "-mcpu=power8 -mtune=power8"}},
			},
		},
		{
			Name: "aarch64", Vendor: "generic", Family: "aarch64",
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 6, flags: "-march=armv8-a"}},
			},
		},
		{
			Name: "armv8.1a", Vendor: "generic", Family: "aarch64",
			Parents: []string{"aarch64"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 6, flags: "-march=armv8.1-a"}},
			},
		},
		{
			Name: "thunderx2", Vendor: "cavium", Family: "aarch64",
			Parents:  []string{"armv8.1a", "aarch64"},
			Features: []string{"fp", "asimd", "atomics", "cpuid"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 7, flags: "-mcpu=thunderx2t99"}},
			},
		},
		{
			Name: "x86_64", Vendor: "generic", Family: "x86_64",
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 4, flags: "-march=x86-64 -mtune=generic"}},
			},
		},
		{
			Name: "skylake", Vendor: "intel", Family: "x86_64",
			Parents:  []string{"x86_64"},
			Features: []string{"avx2", "avx512f"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 6, flags: "-march=skylake -mtune=skylake"}},
			},
		},
		{
			Name: "zen2", Vendor: "amd", Family: "x86_64",
			Parents:  []string{"x86_64"},
			Features: []string{"avx2"},
			compilerFlags: map[string][]versionedFlags{
				"gcc": {{minMajor: 9, flags: "-march=znver2 -mtune=znver2"}},
			},
		},
	}
	m := make(map[string]*Microarch, len(entries))
	for _, e := range entries {
		m[e.Name] = e
	}
	return m
}

// Names returns all database labels, sorted.
func Names() []string {
	out := make([]string, 0, len(db))
	for name := range db {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the microarchitecture entry for a label.
func Lookup(name string) (*Microarch, error) {
	m, ok := db[name]
	if !ok {
		return nil, fmt.Errorf("archspec: unknown microarchitecture %q", name)
	}
	return m, nil
}

// CompatibleWith reports whether code compiled for target runs on m (m is
// target itself or a descendant).
func (m *Microarch) CompatibleWith(target string) bool {
	if m.Name == target {
		return true
	}
	for _, p := range m.Parents {
		if p == target {
			return true
		}
		if pm, ok := db[p]; ok && pm.CompatibleWith(target) {
			return true
		}
	}
	return false
}

// HasFeature reports whether the microarchitecture advertises a feature.
func (m *Microarch) HasFeature(f string) bool {
	for _, have := range m.Features {
		if have == f {
			return true
		}
	}
	return false
}

// Triple returns the Spack-style target triple for a platform/os pair,
// e.g. "linux-sifive-u74mc" as quoted in the paper.
func (m *Microarch) Triple(platform string) string {
	return platform + "-" + m.Vendor + "-" + m.Name
}

// OptimizationFlags returns the compiler flags archspec emits for this
// microarchitecture and compiler version ("gcc", "10.3.0"). The newest
// flag set whose minimum version is satisfied wins.
func (m *Microarch) OptimizationFlags(compiler, version string) (string, error) {
	entries, ok := m.compilerFlags[compiler]
	if !ok {
		return "", fmt.Errorf("archspec: no flags for compiler %q on %s", compiler, m.Name)
	}
	major, err := majorOf(version)
	if err != nil {
		return "", fmt.Errorf("archspec: %s %s: %w", compiler, version, err)
	}
	best := ""
	bestMin := -1
	for _, e := range entries {
		if major >= e.minMajor && e.minMajor > bestMin {
			best = e.flags
			bestMin = e.minMajor
		}
	}
	if bestMin < 0 {
		return "", fmt.Errorf("archspec: %s %s too old for %s", compiler, version, m.Name)
	}
	return best, nil
}

func majorOf(version string) (int, error) {
	head := version
	if i := strings.IndexByte(version, '.'); i >= 0 {
		head = version[:i]
	}
	major, err := strconv.Atoi(head)
	if err != nil {
		return 0, fmt.Errorf("bad version %q", version)
	}
	return major, nil
}
