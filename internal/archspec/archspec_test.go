package archspec

import (
	"strings"
	"testing"
)

func TestLookupKnown(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if m.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := Lookup("i486"); err == nil {
		t.Error("unknown microarchitecture accepted")
	}
}

func TestU74MCTriple(t *testing.T) {
	// The paper quotes the linux-sifive-u74mc target triple as already
	// supported by archspec 0.1.3.
	m, err := Lookup("u74mc")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Triple("linux"); got != "linux-sifive-u74mc" {
		t.Errorf("triple = %q, want linux-sifive-u74mc", got)
	}
}

func TestCompatibilityChains(t *testing.T) {
	tests := []struct {
		arch, target string
		want         bool
	}{
		{"u74mc", "riscv64", true},
		{"u74mc", "u74mc", true},
		{"riscv64", "u74mc", false},
		{"power9le", "ppc64le", true},
		{"power9le", "power8le", true},
		{"power8le", "power9le", false},
		{"thunderx2", "aarch64", true},
		{"thunderx2", "armv8.1a", true},
		{"thunderx2", "x86_64", false},
		{"skylake", "x86_64", true},
		{"zen2", "skylake", false},
	}
	for _, tt := range tests {
		m, err := Lookup(tt.arch)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.CompatibleWith(tt.target); got != tt.want {
			t.Errorf("%s compatible with %s = %v, want %v", tt.arch, tt.target, got, tt.want)
		}
	}
}

func TestU74MCBitmanipFlagsByCompilerVersion(t *testing.T) {
	// Section V-A (iii): GCC 10.3.0 cannot emit Zba/Zbb; minimal support
	// landed in GCC 12.
	m, err := Lookup("u74mc")
	if err != nil {
		t.Fatal(err)
	}
	old, err := m.OptimizationFlags("gcc", "10.3.0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(old, "zba") || strings.Contains(old, "zbb") {
		t.Errorf("gcc 10.3 flags %q must not contain bitmanip", old)
	}
	if !strings.Contains(old, "sifive-7-series") {
		t.Errorf("gcc 10.3 flags %q missing pipeline tuning", old)
	}
	modern, err := m.OptimizationFlags("gcc", "12.1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(modern, "zba_zbb") {
		t.Errorf("gcc 12 flags %q missing bitmanip", modern)
	}
}

func TestHasFeature(t *testing.T) {
	m, _ := Lookup("u74mc")
	if !m.HasFeature("zba") || !m.HasFeature("zbb") {
		t.Error("u74mc hardware must advertise Zba/Zbb (the silicon has them)")
	}
	if m.HasFeature("avx2") {
		t.Error("u74mc must not advertise avx2")
	}
}

func TestOptimizationFlagErrors(t *testing.T) {
	m, _ := Lookup("u74mc")
	if _, err := m.OptimizationFlags("icc", "2021"); err == nil {
		t.Error("unknown compiler accepted")
	}
	if _, err := m.OptimizationFlags("gcc", "nonsense"); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := m.OptimizationFlags("gcc", "4.8.5"); err == nil {
		t.Error("too-old compiler accepted for u74mc")
	}
}

func TestComparisonMachineFlags(t *testing.T) {
	p9, _ := Lookup("power9le")
	flags, err := p9.OptimizationFlags("gcc", "10.3.0")
	if err != nil || !strings.Contains(flags, "power9") {
		t.Errorf("power9 flags = %q, %v", flags, err)
	}
	tx2, _ := Lookup("thunderx2")
	flags, err = tx2.OptimizationFlags("gcc", "10.3.0")
	if err != nil || !strings.Contains(flags, "thunderx2") {
		t.Errorf("thunderx2 flags = %q, %v", flags, err)
	}
}
