// Package powerplane implements the cluster half of the dynamic power
// management the paper lists as future work (Section VI item ii): a
// cluster-wide power budget governor layered on top of the per-node DVFS
// governors of package dtm.
//
// The governor measures the total board draw through the ExaMon v2 query
// layer (power_pub publishes per-node rail totals; the governor runs an
// aggregating range query over the last control window), splits the
// budget into per-node caps with RAPL-style proportional sharing under
// priority weights — nodes drawing below their share donate the surplus
// to nodes pushing against theirs — and hands each cap to that node's dtm
// governor, whose DVFS actuator enforces it. Budget, draw, headroom and
// throttle state are published back into ExaMon as typed samples, and the
// governor doubles as the scheduler's PowerAdvisor so placement decisions
// consult predicted job draw before committing nodes.
package powerplane

import (
	"fmt"
	"math"

	"montecimone/internal/cluster"
	"montecimone/internal/dtm"
	"montecimone/internal/examon"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// Config tunes the cluster power governor.
type Config struct {
	// BudgetW is the cluster power budget in watts (required).
	BudgetW float64
	// Period is the control interval in seconds (default 1).
	Period float64
	// Weights are per-host priority weights for cap distribution
	// (default 1 for every host). Higher weight, larger guaranteed share.
	Weights map[string]float64
	// CapC is the per-node thermal ceiling handed to the dtm governors
	// (default the dtm default, 95 degC).
	CapC float64
	// Org and Cluster tag the published telemetry (ExaMon defaults).
	Org, Cluster string
}

// capSlackW is the margin a node keeps above its measured draw when it
// donates surplus budget, so ordinary load noise does not immediately
// throttle it.
const capSlackW = 0.2

// reservationPeriods is how many control periods a placement reservation
// outlives: by then power_pub samples of the new load dominate the
// measurement window and the reservation would double-count.
const reservationPeriods = 2

// reservation is predicted draw of a placement not yet visible to the
// measurement window.
type reservation struct {
	watts float64
	until float64
}

// Governor is the cluster power-budget controller.
type Governor struct {
	engine *sim.Engine
	cl     *cluster.Cluster
	store  examon.Storage
	broker *examon.Broker
	pm     *power.Model
	cfg    Config

	govs   map[string]*dtm.Governor
	ticker *sim.Ticker

	drawW        float64
	lastHeadroom float64
	throttled    int
	reservations []reservation
	onHeadroom   func()

	batch   []examon.Sample
	perNode map[string]float64 // scratch: measured draw per host, watts
	caps    map[string]float64 // last distributed caps, watts
	aggRes  []examon.AggSeries // scratch: reused measurement query result
	shares  []share            // scratch: reused per-tick distribution table
}

// share is one running node's row in the distribute() water-filling pass.
type share struct {
	host   string
	weight float64
	draw   float64
	cap    float64
	capped bool
}

// New builds a governor over the cluster. store is the telemetry database
// the power_pub samples land in (a *examon.TSDB); broker receives the
// governor's own state samples. One dtm governor per node is created and
// owned by the plane.
func New(engine *sim.Engine, cl *cluster.Cluster, store examon.Storage, broker *examon.Broker, cfg Config) (*Governor, error) {
	if engine == nil || cl == nil || store == nil || broker == nil {
		return nil, fmt.Errorf("powerplane: engine, cluster, storage and broker are all required")
	}
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("powerplane: budget must be positive, got %v W", cfg.BudgetW)
	}
	if cfg.Period == 0 {
		cfg.Period = 1
	}
	if cfg.Period < 0 {
		return nil, fmt.Errorf("powerplane: negative period %v", cfg.Period)
	}
	if cfg.Org == "" {
		cfg.Org = examon.DefaultOrg
	}
	if cfg.Cluster == "" {
		cfg.Cluster = examon.DefaultCluster
	}
	for host, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("powerplane: weight %v for %s must be positive", w, host)
		}
	}
	g := &Governor{
		engine:  engine,
		cl:      cl,
		store:   store,
		broker:  broker,
		pm:      power.NewModel(),
		cfg:     cfg,
		govs:    make(map[string]*dtm.Governor, cl.Size()),
		perNode: make(map[string]float64, cl.Size()),
		caps:    make(map[string]float64, cl.Size()),
	}
	for i := 0; i < cl.Size(); i++ {
		nd := cl.Node(i)
		gov, err := dtm.New(nd, dtm.Config{CapC: cfg.CapC})
		if err != nil {
			return nil, fmt.Errorf("powerplane: %w", err)
		}
		g.govs[nd.Hostname()] = gov
	}
	return g, nil
}

// NodeGovernor returns the dtm governor owned by the plane for one host.
func (g *Governor) NodeGovernor(host string) *dtm.Governor { return g.govs[host] }

// OnHeadroomIncrease registers a callback fired from the control loop
// whenever budget headroom grows — the scheduler hooks its Reschedule
// here so power-delayed jobs start as soon as draw falls.
func (g *Governor) OnHeadroomIncrease(fn func()) { g.onHeadroom = fn }

// Start launches the per-node governors and the budget control loop.
func (g *Governor) Start() error {
	if g.ticker != nil {
		return fmt.Errorf("powerplane: governor already running")
	}
	for _, gov := range g.govs {
		if err := gov.Start(g.engine); err != nil {
			return fmt.Errorf("powerplane: %w", err)
		}
	}
	// The budget control loop is a cross-shard exchange: it measures every
	// node's draw and redistributes per-node caps, so its tick is a plain
	// barrier event (terminates any lookahead window it lands in). Its
	// period is also a declared lookahead bound — between ticks the plane
	// cannot move caps, which the sharded engine may exploit.
	g.engine.DeclareLookahead("powerplane.tick", g.cfg.Period)
	tk, err := sim.NewTicker(g.engine, g.engine.Now()+g.cfg.Period, g.cfg.Period,
		"powerplane.control", g.control)
	if err != nil {
		return fmt.Errorf("powerplane: %w", err)
	}
	g.ticker = tk
	return nil
}

// Stop halts the control loop and the per-node governors (restoring the
// nominal operating points).
func (g *Governor) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
	for _, gov := range g.govs {
		gov.Stop()
	}
}

// control runs one budget interval: prune reservations, measure,
// distribute, publish. Reservation pruning happens only here, on the
// engine goroutine — the read paths (HeadroomWatts, Snapshot) must stay
// mutation-free because the REST server calls them from HTTP handlers.
func (g *Governor) control(now float64) {
	live := g.reservations[:0]
	for _, r := range g.reservations {
		if r.until > now {
			live = append(live, r)
		}
	}
	g.reservations = live
	g.measure(now)
	g.distribute()
	g.publish(now)
	if headroom := g.HeadroomWatts(); headroom > g.lastHeadroom && g.onHeadroom != nil {
		g.lastHeadroom = headroom
		g.onHeadroom()
	} else {
		g.lastHeadroom = headroom
	}
}

// measure refreshes the per-node draw from the telemetry database: an
// aggregating v2 query averaging each node's power_pub board total over
// the last 1.5 control windows. The plugin+metric filter rides the
// storage engines' inverted tag index, so each control tick touches only
// the power_pub rail series instead of scanning the whole database, and
// the result slice is reused across ticks (QueryAggInto). Nodes with no
// samples in the window yet (plane enabled without monitoring, or right
// after boot) fall back to an instantaneous model read so the budget
// never flies blind.
func (g *Governor) measure(now float64) {
	for h := range g.perNode {
		delete(g.perNode, h)
	}
	series, err := examon.QueryAggInto(g.aggRes[:0], g.store, examon.Filter{
		Plugin: "power_pub",
		Metric: examon.PowerTotalMetric,
		From:   now - 1.5*g.cfg.Period,
	}, examon.AggOptions{Op: examon.AggAvg})
	if err == nil {
		g.aggRes = series
		for _, s := range series {
			if len(s.Points) > 0 {
				g.perNode[s.Tags.Node] = s.Points[len(s.Points)-1].V / 1000
			}
		}
	}
	total := 0.0
	for i := 0; i < g.cl.Size(); i++ {
		nd := g.cl.Node(i)
		w, ok := g.perNode[nd.Hostname()]
		if !ok {
			w = nd.TotalMilliwatts() / 1000
			g.perNode[nd.Hostname()] = w
		}
		total += w
	}
	g.drawW = total
}

// distribute splits the budget into per-node caps — weight-proportional
// shares with two water-filling passes that move surplus from nodes
// drawing under their share to nodes pressed against theirs — and hands
// the caps to the dtm governors.
func (g *Governor) distribute() {
	active := g.shares[:0]
	sumW := 0.0
	g.throttled = 0
	for i := 0; i < g.cl.Size(); i++ {
		nd := g.cl.Node(i)
		host := nd.Hostname()
		gov := g.govs[host]
		if nd.State() != node.StateRunning {
			gov.SetPowerCapW(0) // nothing to enforce on a node that is down
			delete(g.caps, host)
			continue
		}
		if gov.Scale() < 1 {
			g.throttled++
		}
		w := 1.0
		if cw, ok := g.cfg.Weights[host]; ok {
			w = cw
		}
		active = append(active, share{host: host, weight: w, draw: g.perNode[host]})
		sumW += w
	}
	g.shares = active
	if len(active) == 0 {
		return
	}
	// Weighted fair shares first; then donate the headroom nodes leave
	// under their share to the nodes pressed against theirs. A donor's
	// own cap never drops below its share — caps are limits, not
	// allocations, so a donor ramping back up is throttled no further
	// than its guarantee while the next control tick re-balances.
	for i := range active {
		active[i].cap = g.cfg.BudgetW * active[i].weight / sumW
	}
	surplus, needW := 0.0, 0.0
	for i := range active {
		s := &active[i]
		if s.draw+capSlackW < s.cap {
			surplus += s.cap - s.draw - capSlackW
		} else {
			s.capped = true // pressed against its share
			needW += s.weight
		}
	}
	if surplus > 0 && needW > 0 {
		for i := range active {
			s := &active[i]
			if s.capped {
				s.cap += surplus * s.weight / needW
			}
		}
	}
	for _, s := range active {
		g.caps[s.host] = s.cap
		g.govs[s.host].SetPowerCapW(s.cap)
	}
}

// publish emits the plane's state as typed telemetry: cluster-level
// budget/draw/headroom/throttle samples tagged to the master node, plus
// one cap sample per compute node.
func (g *Governor) publish(now float64) {
	g.batch = g.batch[:0]
	clusterTags := func(metric string) examon.Tags {
		return examon.Tags{Org: g.cfg.Org, Cluster: g.cfg.Cluster,
			Node: cluster.MasterHostname, Plugin: "powerplane", Core: -1, Metric: metric}
	}
	g.batch = append(g.batch,
		examon.Sample{Tags: clusterTags("budget_w"), T: now, V: g.cfg.BudgetW},
		examon.Sample{Tags: clusterTags("draw_w"), T: now, V: g.drawW},
		examon.Sample{Tags: clusterTags("headroom_w"), T: now, V: g.cfg.BudgetW - g.drawW},
		examon.Sample{Tags: clusterTags("throttled_nodes"), T: now, V: float64(g.throttled)},
	)
	// Node order, not map order: telemetry ingest order must be
	// deterministic for the byte-identical regeneration guarantee.
	for i := 0; i < g.cl.Size(); i++ {
		host := g.cl.Node(i).Hostname()
		cap, ok := g.caps[host]
		if !ok {
			continue
		}
		g.batch = append(g.batch, examon.Sample{
			Tags: examon.Tags{Org: g.cfg.Org, Cluster: g.cfg.Cluster,
				Node: host, Plugin: "powerplane", Core: -1, Metric: "cap_w"},
			T: now, V: cap,
		})
	}
	_ = g.broker.PublishBatch(g.batch)
}

// BudgetW returns the configured budget.
func (g *Governor) BudgetW() float64 { return g.cfg.BudgetW }

// SetBudgetW changes the cluster power budget in place (fault campaigns
// model brownouts as budget steps). The next control tick measures,
// redistributes caps and publishes under the new budget; nothing is
// recomputed eagerly, exactly as a facility-side setpoint change would
// land between samples of a real governor.
func (g *Governor) SetBudgetW(w float64) error {
	if w <= 0 {
		return fmt.Errorf("powerplane: budget must be positive, got %v W", w)
	}
	g.cfg.BudgetW = w
	return nil
}

// DrawW returns the last measured total cluster draw.
func (g *Governor) DrawW() float64 { return g.drawW }

// ThrottledNodes returns how many nodes currently run below nominal.
func (g *Governor) ThrottledNodes() int { return g.throttled }

// Snapshot is the JSON shape of the plane's state for the REST API.
type Snapshot struct {
	BudgetW        float64            `json:"budget_w"`
	DrawW          float64            `json:"draw_w"`
	HeadroomW      float64            `json:"headroom_w"`
	ReservedW      float64            `json:"reserved_w"`
	ThrottledNodes int                `json:"throttled_nodes"`
	NodeCapsW      map[string]float64 `json:"node_caps_w"`
	NodeScales     map[string]float64 `json:"node_scales"`
}

// Snapshot returns the current plane state (served by mcmon's
// /api/v2/powerplane endpoint).
func (g *Governor) Snapshot() Snapshot {
	caps := make(map[string]float64, len(g.caps))
	for h, c := range g.caps {
		caps[h] = c
	}
	scales := make(map[string]float64, len(g.govs))
	for h, gov := range g.govs {
		scales[h] = gov.Scale()
	}
	return Snapshot{
		BudgetW:        g.cfg.BudgetW,
		DrawW:          g.drawW,
		HeadroomW:      g.HeadroomWatts(),
		ReservedW:      g.reservedW(g.engine.Now()),
		ThrottledNodes: g.throttled,
		NodeCapsW:      caps,
		NodeScales:     scales,
	}
}

// The governor implements sched.PowerAdvisor so the powercap policy can
// consult it (the scheduler only sees the interface).

// PredictedJobWatts predicts the incremental draw of placing a job with
// the given steady activity profile (the workload model's calibrated
// Table VI column, via sched.JobSpec.Activity) on the given node count:
// the rail model at that activity minus the idle floor those running
// nodes already draw. Jobs without a model carry the idle zero profile
// and predict no incremental draw.
func (g *Governor) PredictedJobWatts(act power.Activity, nodes int) float64 {
	return predictedWatts(g.pm, act, nodes)
}

// PredictedWatts is the governor's draw predictor as a standalone
// function: the incremental watts of running the given activity profile
// on the given node count over the idle floor, from the calibrated rail
// model. The fleet meta-scheduler scores clusters with it before any
// cluster (and hence any live governor) exists, so the meta level and the
// admission gate price work with identical math.
func PredictedWatts(act power.Activity, nodes int) float64 {
	return predictedWatts(power.NewModel(), act, nodes)
}

// IdleFloorWatts is the rail model's per-node idle draw in watts — the
// baseline a powered cluster pays before any placement. The meta level
// subtracts it from a cluster's power budget to get the budget actually
// available to workloads.
func IdleFloorWatts(nodes int) float64 {
	pm := power.NewModel()
	return float64(nodes) * pm.TotalMilliwatts(power.PhaseRun, power.ActivityIdle) / 1000
}

func predictedWatts(pm *power.Model, act power.Activity, nodes int) float64 {
	perNode := (pm.TotalMilliwatts(power.PhaseRun, act) -
		pm.TotalMilliwatts(power.PhaseRun, power.ActivityIdle)) / 1000
	if perNode < 0 {
		perNode = 0
	}
	return float64(nodes) * perNode
}

// HeadroomWatts returns the budget headroom available for new placements:
// budget minus measured draw minus unexpired placement reservations.
func (g *Governor) HeadroomWatts() float64 {
	h := g.cfg.BudgetW - g.drawW - g.reservedW(g.engine.Now())
	if h < 0 {
		return 0
	}
	return h
}

// NodeTempC returns the junction temperature for cooler-node placement.
// Unknown hosts read +Inf so they sort last.
func (g *Governor) NodeTempC(host string) float64 {
	nd, err := g.cl.NodeByHostname(host)
	if err != nil {
		return math.Inf(1)
	}
	return nd.Temperature(thermal.SensorCPU)
}

// NotePlacement reserves a just-placed job's predicted watts until the
// measurement window has seen the new draw, preventing a burst of
// admissions in one scheduling pass from blowing through the budget.
func (g *Governor) NotePlacement(act power.Activity, nodes int) {
	g.reservations = append(g.reservations, reservation{
		watts: g.PredictedJobWatts(act, nodes),
		until: g.engine.Now() + reservationPeriods*g.cfg.Period,
	})
}

// reservedW sums unexpired reservations without mutating anything (the
// control loop prunes expired entries).
func (g *Governor) reservedW(now float64) float64 {
	total := 0.0
	for _, r := range g.reservations {
		if r.until > now {
			total += r.watts
		}
	}
	return total
}
