package powerplane

import (
	"math"
	"testing"

	"montecimone/internal/cluster"
	"montecimone/internal/examon"
	"montecimone/internal/power"
	"montecimone/internal/sim"
)

// rig boots an 8-node mitigated cluster with power telemetry and a plane.
func rig(t *testing.T, cfg Config) (*sim.Engine, *cluster.Cluster, *Governor) {
	t.Helper()
	e := sim.NewEngine()
	c, err := cluster.New(e, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	broker := examon.NewBroker()
	db := examon.NewTSDB()
	if _, err := db.Attach(broker); err != nil {
		t.Fatal(err)
	}
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyAirflowMitigation(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		pp, err := examon.NewPowerPub(broker, c.Node(i), "", "")
		if err != nil {
			t.Fatal(err)
		}
		if err := pp.Start(e); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New(e, c, db, broker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Stop(); c.Stop() })
	return e, c, g
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	c, err := cluster.New(e, cluster.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := examon.NewTSDB()
	br := examon.NewBroker()
	if _, err := New(nil, c, db, br, Config{BudgetW: 10}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, c, db, br, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(e, c, db, br, Config{BudgetW: 10, Period: -1}); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := New(e, c, db, br, Config{BudgetW: 10, Weights: map[string]float64{"mc01": -1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestCapsEnforceBudget: with every node under HPL and a budget below the
// aggregate draw, the distributed caps bring the measured total down to
// the budget and the state telemetry reflects it.
func TestCapsEnforceBudget(t *testing.T) {
	const budget = 44.0 // 8 HPL nodes want ~47.5 W on the rails
	e, c, g := rig(t, Config{BudgetW: budget})
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 120); err != nil {
		t.Fatal(err)
	}
	if g.DrawW() > budget+0.1 {
		t.Errorf("settled draw %.2f W above the %.0f W budget", g.DrawW(), budget)
	}
	if g.ThrottledNodes() == 0 {
		t.Error("no node throttled despite the over-budget demand")
	}
	snap := g.Snapshot()
	if snap.BudgetW != budget || snap.DrawW != g.DrawW() {
		t.Errorf("snapshot inconsistent: %+v", snap)
	}
	capTotal := 0.0
	for _, w := range snap.NodeCapsW {
		capTotal += w
	}
	if capTotal > budget+0.1 {
		t.Errorf("distributed caps sum to %.2f W above the budget", capTotal)
	}
	// Clearing the load recovers the nodes to nominal.
	c.ClearWorkloadOn(c.Hostnames())
	if err := e.RunUntil(e.Now() + 300); err != nil {
		t.Fatal(err)
	}
	if got := g.Snapshot().ThrottledNodes; got != 0 {
		t.Errorf("%d nodes still throttled after the load cleared", got)
	}
}

// TestWeightedShares: a node with a larger weight keeps a larger cap when
// everyone is pressed against the budget.
func TestWeightedShares(t *testing.T) {
	e, c, g := rig(t, Config{
		BudgetW: 42,
		Weights: map[string]float64{"mc01": 3}, // everyone else weight 1
	})
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 60); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if snap.NodeCapsW["mc01"] <= snap.NodeCapsW["mc02"] {
		t.Errorf("weighted node cap %.2f not above peer cap %.2f",
			snap.NodeCapsW["mc01"], snap.NodeCapsW["mc02"])
	}
}

// TestAdvisorContract: predictions come from the rail model, headroom
// nets out reservations, and reservations expire.
func TestAdvisorContract(t *testing.T) {
	e, _, g := rig(t, Config{BudgetW: 50})
	if err := e.RunUntil(e.Now() + 5); err != nil {
		t.Fatal(err)
	}
	pm := power.NewModel()
	wantPerNode := (pm.TotalMilliwatts(power.PhaseRun, power.ActivityHPL) -
		pm.TotalMilliwatts(power.PhaseRun, power.ActivityIdle)) / 1000
	if got := g.PredictedJobWatts(power.ActivityHPL, 4); math.Abs(got-4*wantPerNode) > 1e-9 {
		t.Errorf("PredictedJobWatts(hpl, 4) = %v, want %v", got, 4*wantPerNode)
	}
	if got := g.PredictedJobWatts(power.Activity{}, 3); got != 0 {
		t.Errorf("idle profile predicted %v, want 0", got)
	}
	before := g.HeadroomWatts()
	g.NotePlacement(power.ActivityHPL, 2)
	after := g.HeadroomWatts()
	if d := before - after; math.Abs(d-2*wantPerNode) > 1e-9 {
		t.Errorf("reservation shaved %v W off headroom, want %v", d, 2*wantPerNode)
	}
	// Reservations expire after the measurement window catches up.
	if err := e.RunUntil(e.Now() + 3*g.cfg.Period); err != nil {
		t.Fatal(err)
	}
	if g.Snapshot().ReservedW != 0 {
		t.Errorf("reservation did not expire: %+v", g.Snapshot())
	}
	if temp := g.NodeTempC("mc01"); temp < 20 || temp > 110 {
		t.Errorf("NodeTempC(mc01) = %v", temp)
	}
	if !math.IsInf(g.NodeTempC("nope"), 1) {
		t.Error("unknown host temperature not +Inf")
	}
}

// TestPlaneTelemetryPublished: the plane's state lands in the TSDB as
// typed samples.
func TestPlaneTelemetryPublished(t *testing.T) {
	e, _, g := rig(t, Config{BudgetW: 50})
	if err := e.RunUntil(e.Now() + 10); err != nil {
		t.Fatal(err)
	}
	db := g.store.(*examon.TSDB)
	for _, metric := range []string{"budget_w", "draw_w", "headroom_w", "throttled_nodes"} {
		series := db.Query(examon.Filter{Node: cluster.MasterHostname, Plugin: "powerplane", Metric: metric})
		if len(series) != 1 || len(series[0].Points) == 0 {
			t.Errorf("metric %s not published", metric)
		}
	}
	caps := db.Query(examon.Filter{Node: "mc03", Plugin: "powerplane", Metric: "cap_w"})
	if len(caps) != 1 || len(caps[0].Points) == 0 {
		t.Error("per-node cap_w not published")
	}
}
