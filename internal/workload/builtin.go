package workload

import (
	"fmt"

	"montecimone/internal/hpl"
	"montecimone/internal/mpi"
	"montecimone/internal/netsim"
	"montecimone/internal/power"
	"montecimone/internal/qe"
	"montecimone/internal/stream"
)

// Reference problem sizes of the paper's evaluation runs (Section V): the
// HPL.dat order and block of the 8-node run and the LAX matrix order.
const (
	refHPLN  = 40704
	refHPLNB = 192
	refQEN   = 512
)

// Resident-set footprints per node, matching the paper's benchmark
// configurations (HPL N=40704 doubles over 8 nodes plus buffers; STREAM's
// three arrays; the LAX work arrays).
const (
	hplMemBytes    = 13.3e9
	streamMemBytes = 2.1e9
	qeMemBytes     = 0.4e9
	mpiMemBytes    = 0.1e9
)

// The built-in catalogue: the Table VI workload columns plus the MPI
// ping-pong microbenchmark. Registered at package init so every consumer
// (scheduler, campaign engine, CLIs) sees the same set.
func init() {
	mustRegister(hplModel())
	mustRegister(streamModel("stream.ddr", "STREAM, 1945.5 MiB DDR-resident working set",
		power.ActivityStreamDDR, stream.DDRWorkingSetBytes))
	mustRegister(streamModel("stream.l2", "STREAM, 1.1 MiB L2-resident working set",
		power.ActivityStreamL2, stream.L2WorkingSetBytes))
	mustRegister(qeModel())
	mustRegister(mpiPingPongModel())
	mustRegister(&Model{
		Name:        "idle",
		Description: "idle operating system (Table VI Idle column)",
		Steady:      power.ActivityIdle,
	})
}

// hplModel is the HPL benchmark at the paper's N=40704, NB=192. The phase
// cycle follows the blocked LU iteration — panel factorisation (partial
// FPU utilisation, pivot reductions), panel/U broadcast (communication
// bound, cores near idle) and the trailing DGEMM update (the FPU- and
// cache-hot bulk of the run). The durations give the update ~70 % of the
// cycle, and the time-weighted mean activity reproduces the calibrated
// Table VI HPL column within ~1 %.
func hplModel() *Model {
	return &Model{
		Name:        "hpl",
		Description: "High-Performance Linpack, N=40704 NB=192",
		Steady:      power.ActivityHPL,
		MemBytes:    hplMemBytes,
		Phases: []Phase{
			{Name: "panel", Seconds: 6,
				Activity: power.Activity{CoreActivity: 0.35, DDRReadGBs: 0.60, DDRWriteGBs: 0.10, L2GBs: 6.0, PCIeActivity: 0.02}},
			{Name: "bcast", Seconds: 3,
				Activity: power.Activity{CoreActivity: 0.05, DDRReadGBs: 0.20, DDRWriteGBs: 0.05, L2GBs: 1.0, PCIeActivity: 0.02}},
			{Name: "update", Seconds: 21,
				Activity: power.Activity{CoreActivity: 0.56, DDRReadGBs: 0.95, DDRWriteGBs: 0.11, L2GBs: 9.6, PCIeActivity: 0.02}},
		},
		Runtime: func(nodes int) (float64, error) {
			r, err := hpl.Simulate(hpl.Config{N: refHPLN, NB: refHPLNB, Nodes: nodes})
			if err != nil {
				return 0, err
			}
			return r.Seconds, nil
		},
		Performance: func(nodes int) (Perf, error) {
			r, err := hpl.Simulate(hpl.Config{N: refHPLN, NB: refHPLNB, Nodes: nodes})
			if err != nil {
				return Perf{}, err
			}
			return Perf{Value: r.GFlops, Unit: "GFLOP/s"}, nil
		},
	}
}

// streamModel builds one of the two STREAM dataset models. STREAM is a
// single-phase workload — the four kernels stress the same memory system —
// so the model runs at its Table V activity with no transitions. The
// runtime estimate walks the benchmark's own structure: NTIMES=10
// repetitions of copy/scale/add/triad over the working set at the
// calibrated per-kernel bandwidth; node count does not change it (STREAM
// is per-node, campaigns run one rank set per node).
func streamModel(name, desc string, act power.Activity, workingSet int64) *Model {
	const ntimes = 10 // STREAM v5.10 default repetition count
	runtime := func(int) (float64, error) {
		res, err := stream.Run(stream.Config{WorkingSetBytes: workingSet})
		if err != nil {
			return 0, err
		}
		elems := workingSet / 3 / 8
		total := 0.0
		for _, r := range res {
			bytes := float64(elems) * float64(stream.BytesPerElement(r.Kernel))
			total += ntimes * bytes / (r.MeanMBps * 1e6)
		}
		return total, nil
	}
	return &Model{
		Name:        name,
		Description: desc,
		Steady:      act,
		MemBytes:    streamMemBytes,
		Runtime:     runtime,
		Performance: func(int) (Perf, error) {
			res, err := stream.Run(stream.Config{WorkingSetBytes: workingSet})
			if err != nil {
				return Perf{}, err
			}
			return Perf{Value: res[3].MeanMBps, Unit: "triad-MB/s"}, nil // Table V order: triad last
		},
	}
}

// qeModel is the quantumESPRESSO LAX driver on a 512^2 matrix. The phase
// cycle alternates the Householder tridiagonal reduction (bandwidth-heavy,
// modest FPU) with the QL eigenvector accumulation (the FPU-bound bulk);
// the 8 s / 12 s split reproduces the Table VI QE column exactly in the
// time-weighted mean.
func qeModel() *Model {
	return &Model{
		Name:        "qe",
		Description: "quantumESPRESSO LAX driver, 512^2 diagonalisation",
		Steady:      power.ActivityQE,
		MemBytes:    qeMemBytes,
		Phases: []Phase{
			{Name: "reduce", Seconds: 8,
				Activity: power.Activity{CoreActivity: 0.23, DDRReadGBs: 0.90, DDRWriteGBs: 0.15, L2GBs: 7.0, PCIeActivity: 0.10}},
			{Name: "eigen", Seconds: 12,
				Activity: power.Activity{CoreActivity: 0.415, DDRReadGBs: 0.65, DDRWriteGBs: 0.15, L2GBs: 9.5, PCIeActivity: 0.10}},
		},
		Runtime: func(nodes int) (float64, error) {
			r, err := qe.Run(qe.Config{N: refQEN, Nodes: nodes})
			if err != nil {
				return 0, err
			}
			return r.Seconds, nil
		},
		Performance: func(nodes int) (Perf, error) {
			r, err := qe.Run(qe.Config{N: refQEN, Nodes: nodes})
			if err != nil {
				return Perf{}, err
			}
			return Perf{Value: r.GFlops, Unit: "GFLOP/s"}, nil
		},
	}
}

// mpiPingPongModel is the OSU-style point-to-point sweep over the GbE
// fabric: message sizes from 1 B to 1 MiB, 200 round trips each. Cores
// mostly wait on the NIC, so the activity is light; the profile is an
// estimate (the paper does not characterise its power). The runtime runs
// the actual MPI stack over a two-node fabric, so the network model is
// exercised end to end.
func mpiPingPongModel() *Model {
	sweep := func() (elapsed, oneWayUs float64, err error) {
		fabric, err := netsim.NewFabric(2, netsim.GigabitEthernet())
		if err != nil {
			return 0, 0, err
		}
		const iters = 200
		for _, bytes := range []float64{1, 4096, 65536, 1 << 20} {
			world, werr := mpi.NewWorld(fabric, []int{0, 1})
			if werr != nil {
				return 0, 0, werr
			}
			var res mpi.PingPongResult
			rerr := world.Run(func(p *mpi.Proc) error {
				r, perr := mpi.PingPong(p, bytes, iters)
				if perr != nil {
					return perr
				}
				if p.Rank() == 0 {
					res = r
				}
				return nil
			})
			if rerr != nil {
				return 0, 0, rerr
			}
			elapsed += res.LatencySec * 2 * iters
			if bytes == 1 {
				oneWayUs = res.LatencySec * 1e6
			}
		}
		return elapsed, oneWayUs, nil
	}
	return &Model{
		Name:        "mpi.pingpong",
		Description: "OSU-style MPI ping-pong sweep, 1 B - 1 MiB over GbE",
		Steady:      power.Activity{CoreActivity: 0.05, DDRReadGBs: 0.10, DDRWriteGBs: 0.10, L2GBs: 0.5, PCIeActivity: 0.05},
		MemBytes:    mpiMemBytes,
		Runtime: func(nodes int) (float64, error) {
			if nodes < 2 {
				return 0, fmt.Errorf("workload: mpi.pingpong needs at least 2 nodes, got %d", nodes)
			}
			elapsed, _, err := sweep()
			return elapsed, err
		},
		Performance: func(nodes int) (Perf, error) {
			if nodes < 2 {
				return Perf{}, fmt.Errorf("workload: mpi.pingpong needs at least 2 nodes, got %d", nodes)
			}
			_, oneWayUs, err := sweep()
			return Perf{Value: oneWayUs, Unit: "oneway-us"}, err
		},
	}
}
