package workload

import (
	"fmt"
	"testing"

	"montecimone/internal/power"
	"montecimone/internal/sim"
)

// recorder is a NodeOps capturing every installation for assertions.
type recorder struct {
	engine *sim.Engine
	log    []string
	active map[string]power.Activity
}

func newRecorder(e *sim.Engine) *recorder {
	return &recorder{engine: e, active: make(map[string]power.Activity)}
}

func (r *recorder) RunWorkloadOn(hosts []string, name string, act power.Activity, mem float64) error {
	r.log = append(r.log, fmt.Sprintf("t=%.0f run %s on %v", r.engine.Now(), name, hosts))
	for _, h := range hosts {
		r.active[h] = act
	}
	return nil
}

func (r *recorder) ClearWorkloadOn(hosts []string) {
	r.log = append(r.log, fmt.Sprintf("t=%.0f clear %v", r.engine.Now(), hosts))
	for _, h := range hosts {
		delete(r.active, h)
	}
}

// A phased model must walk its cycle on the engine: hpl installs
// panel -> bcast -> update -> panel... at the phase boundaries, and Stop
// cancels the pending transition and clears the hosts.
func TestPhasedExecutionCycles(t *testing.T) {
	e := sim.NewEngine()
	rec := newRecorder(e)
	m := MustLookup("hpl")
	ex, err := Start(e, rec, m, []string{"mc01", "mc02"}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Phase(); got != "panel" {
		t.Errorf("initial phase %q, want panel", got)
	}
	if err := e.RunUntil(m.CycleSeconds() + 1); err != nil { // 31 s: one full cycle + 1 s
		t.Fatal(err)
	}
	want := []string{
		"t=0 run hpl/panel on [mc01 mc02]",
		"t=6 run hpl/bcast on [mc01 mc02]",
		"t=9 run hpl/update on [mc01 mc02]",
		"t=30 run hpl/panel on [mc01 mc02]",
	}
	if len(rec.log) != len(want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	for i := range want {
		if rec.log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, rec.log[i], want[i])
		}
	}
	ex.Stop()
	if len(rec.active) != 0 {
		t.Errorf("hosts still active after Stop: %v", rec.active)
	}
	n := len(rec.log) // includes the clear line Stop just logged
	if err := e.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if len(rec.log) != n {
		t.Errorf("transitions survived Stop: %v", rec.log[n:])
	}
	ex.Stop() // idempotent
}

// FixedActivity must pin the steady profile with zero transitions — the
// campaign benchmark's ablation.
func TestFixedActivityExecution(t *testing.T) {
	e := sim.NewEngine()
	rec := newRecorder(e)
	m := MustLookup("hpl")
	ex, err := Start(e, rec, m, []string{"mc01"}, ExecOptions{FixedActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Phase() != "" {
		t.Errorf("fixed run reports phase %q", ex.Phase())
	}
	if err := e.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	if len(rec.log) != 1 {
		t.Fatalf("fixed-activity run transitioned: %v", rec.log)
	}
	if got := rec.active["mc01"]; got != m.Steady {
		t.Errorf("installed %+v, want steady %+v", got, m.Steady)
	}
	ex.Stop()
}

// Single-phase models install once and never transition.
func TestSinglePhaseExecution(t *testing.T) {
	e := sim.NewEngine()
	rec := newRecorder(e)
	ex, err := Start(e, rec, MustLookup("stream.ddr"), []string{"mc03"}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	if len(rec.log) != 1 {
		t.Fatalf("single-phase model transitioned: %v", rec.log)
	}
	ex.Stop()
}
