// Package workload is the single registry of first-class workload models —
// the catalogue of benchmarks the paper's evaluation campaigns run (HPL,
// the two STREAM working sets, the quantumESPRESSO LAX driver, the MPI
// ping-pong microbenchmark and the idle OS). A Model ties together
// everything the rest of the stack used to look up through scattered
// per-command switch tables: the calibrated Table VI activity profile the
// node physics integrates, the resident memory footprint, the execution
// phases a real run alternates through (HPL's panel-factor / broadcast /
// trailing-update loop), and a runtime/performance estimate wired to the
// kernel simulators (hpl.Simulate, stream.Run, qe.Run, mpi latency model).
//
// The scheduler carries a *Model on every job, the campaign engine draws
// job streams from the registry, and the CLIs resolve -workload flags
// through Lookup — one registry, no drifting copies.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"montecimone/internal/power"
)

// Phase is one stage of a workload's steady execution cycle: a name, the
// activity the node physics sees while the phase runs, and the phase's
// duration within one cycle. Models with a single phase run at their
// Steady profile with no transitions.
type Phase struct {
	// Name labels the phase ("panel", "bcast", "update", ...).
	Name string
	// Activity is the node demand while this phase executes.
	Activity power.Activity
	// Seconds is the phase duration within one steady cycle.
	Seconds float64
}

// Perf is a model's headline performance estimate for an allocation.
type Perf struct {
	// Value is the metric magnitude; Unit names it ("GFLOP/s", "MB/s",
	// "us"). Zero Value with empty Unit means the model publishes none.
	Value float64
	Unit  string
}

// Model is a first-class workload: everything the scheduler, the power
// plane, the campaign engine and the CLIs need to know about a benchmark.
type Model struct {
	// Name is the registry key ("hpl", "stream.ddr", ...), the identifier
	// the paper's campaigns and the CLIs use.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Steady is the calibrated aggregate activity profile (the Table VI
	// column). Single-phase models run at it; phased models alternate
	// through Phases whose time-weighted mean reproduces it.
	Steady power.Activity
	// MemBytes is the workload's resident set per node.
	MemBytes float64
	// Phases is the steady execution cycle (nil or len 1 ⇒ no
	// transitions, the node runs at Steady).
	Phases []Phase
	// Runtime estimates the modelled wall time in seconds of one
	// reference run on the given node count, wired to the kernel
	// simulators. Nil means the model has no intrinsic duration (idle).
	Runtime func(nodes int) (float64, error)
	// Performance estimates the headline metric on the given node count.
	// Nil means none.
	Performance func(nodes int) (Perf, error)
}

// CycleSeconds returns the duration of one phase cycle (0 for single-phase
// models).
func (m *Model) CycleSeconds() float64 {
	if len(m.Phases) <= 1 {
		return 0
	}
	total := 0.0
	for _, p := range m.Phases {
		total += p.Seconds
	}
	return total
}

// MeanPhaseActivity returns the time-weighted mean activity over one phase
// cycle; for single-phase models it is Steady. The built-in phased models
// keep it within a few percent of Steady so phased and fixed-activity runs
// dissipate the same mean power.
func (m *Model) MeanPhaseActivity() power.Activity {
	cycle := m.CycleSeconds()
	if cycle == 0 {
		return m.Steady
	}
	var mean power.Activity
	for _, p := range m.Phases {
		w := p.Seconds / cycle
		mean.CoreActivity += w * p.Activity.CoreActivity
		mean.DDRReadGBs += w * p.Activity.DDRReadGBs
		mean.DDRWriteGBs += w * p.Activity.DDRWriteGBs
		mean.L2GBs += w * p.Activity.L2GBs
		mean.PCIeActivity += w * p.Activity.PCIeActivity
	}
	return mean
}

// validate rejects malformed models at registration time.
func (m *Model) validate() error {
	if m.Name == "" {
		return fmt.Errorf("workload: model with empty name")
	}
	for _, p := range m.Phases {
		if p.Seconds <= 0 {
			return fmt.Errorf("workload: model %q phase %q has non-positive duration %v", m.Name, p.Name, p.Seconds)
		}
	}
	if m.MemBytes < 0 {
		return fmt.Errorf("workload: model %q has negative memory footprint", m.Name)
	}
	return nil
}

// registry holds the registered models by name. Registration happens in
// package init (the built-ins) or at program start; lookups afterwards are
// read-only, so no locking is needed under the simulator's single-threaded
// control flow.
var registry = map[string]*Model{}

// Register adds a model to the registry. Duplicate names error so two
// subsystems can never redefine a workload out from under each other.
func Register(m *Model) error {
	if err := m.validate(); err != nil {
		return err
	}
	if _, dup := registry[m.Name]; dup {
		return fmt.Errorf("workload: model %q already registered", m.Name)
	}
	registry[m.Name] = m
	return nil
}

// mustRegister is Register for the package's own built-ins.
func mustRegister(m *Model) {
	if err := Register(m); err != nil {
		panic(err)
	}
}

// Names lists the registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a workload name to its model. Unknown names error with
// the full registry listing, so a CLI typo tells the user what exists.
func Lookup(name string) (*Model, error) {
	if m, ok := registry[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("workload: unknown model %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// MustLookup is Lookup for names known at compile time (tests, built-in
// campaign specs); it panics on unknown names.
func MustLookup(name string) *Model {
	m, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return m
}
