package workload

import "math"

// Phase-boundary checkpoint/restart model for fault campaigns.
//
// A phased workload can checkpoint only where its algorithm has a
// consistent state to dump: the boundaries of its execution phases (the
// end of an HPL trailing update, the end of a STREAM sweep). A job killed
// by NODE_FAIL therefore resumes from the last completed phase boundary,
// not from the instant the node died. Single-phase models have no natural
// boundaries; they checkpoint on a fixed wall-clock interval instead (the
// classic periodic-checkpoint model), and an interval of zero disables
// checkpointing entirely — the restart repeats the whole run.

// RestartPoint returns how many seconds of nominal (unstretched) progress
// survive a failure after elapsed seconds of nominal execution: the last
// phase boundary at or before elapsed for phased models, the last
// intervalS multiple for single-phase models (0 when intervalS is not
// positive — no checkpointing). The result is always in [0, elapsed].
func RestartPoint(m *Model, elapsed, intervalS float64) float64 {
	if m == nil || elapsed <= 0 {
		return 0
	}
	cycle := m.CycleSeconds()
	if cycle == 0 {
		if intervalS <= 0 {
			return 0
		}
		return math.Floor(elapsed/intervalS) * intervalS
	}
	// Whole cycles survive outright; within the tail cycle, walk the phase
	// boundaries while they fit.
	done := math.Floor(elapsed/cycle) * cycle
	for _, p := range m.Phases {
		if done+p.Seconds > elapsed {
			break
		}
		done += p.Seconds
	}
	return done
}
