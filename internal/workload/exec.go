package workload

import (
	"fmt"

	"montecimone/internal/power"
	"montecimone/internal/sim"
)

// NodeOps is the slice of the cluster the phased executor drives. The
// cluster facade implements it; the indirection keeps this package free of
// the hardware assembly (and lets tests substitute a recorder).
type NodeOps interface {
	// RunWorkloadOn installs an activity on the named hosts.
	RunWorkloadOn(hosts []string, name string, act power.Activity, memBytes float64) error
	// ClearWorkloadOn returns the named hosts to idle (halted hosts are
	// skipped by the implementation).
	ClearWorkloadOn(hosts []string)
}

// NodeKeyer is optionally implemented by a NodeOps to map hostnames to
// engine shard keys (the cluster facade implements it). When available,
// phase transitions are scheduled as affine events keyed by the
// allocation, so a sharded engine can prepare the hosts' physics
// concurrently instead of terminating its lookahead window. Without it
// (test recorders), transitions stay plain barrier events — slower under
// sharding, never less correct.
type NodeKeyer interface {
	NodeKeys(hosts []string) []int
}

// ExecOptions tunes a phased execution.
type ExecOptions struct {
	// FixedActivity disables phase interleaving: the job runs at the
	// model's Steady profile for its whole life (the campaign benchmark's
	// ablation, and the exact behaviour of the pre-registry code).
	FixedActivity bool
	// SlowFactor stretches every phase duration by the given factor
	// (values <= 1, including the zero value, leave the cadence nominal).
	// Fault campaigns set it on jobs touching straggler nodes or degraded-
	// network windows so the phase cycle slows down in step with the
	// scheduler's stretched job runtime.
	SlowFactor float64
}

// Execution is one workload running on an allocation, advancing through
// the model's phase cycle on the discrete-event engine. Stop it when the
// job ends (the campaign runner wires Stop into the scheduler's OnEnd).
type Execution struct {
	engine *sim.Engine
	ops    NodeOps
	model  *Model
	hosts  []string
	opts   ExecOptions

	keys    []int // shard keys for the allocation; nil when ops can't map
	phase   int
	next    sim.Handle
	stopped bool

	// Transition plumbing built once in Start: the event label and the
	// rescheduling callback are identical for every transition of this
	// execution, so per-phase scheduling allocates neither a string nor a
	// closure (phase cycles are the second-densest event source after
	// telemetry ticks).
	transName string
	transFn   func(*sim.Engine) // keyless path: plain barrier transitions
	localFn   func(*sim.Proc)   // keyed path: shard-local transitions
}

// localScheduler is the slice of the engine API a transition needs to
// schedule its successor: the Engine itself at Start time, the executing
// Proc from within a local transition callback (so the reschedule joins
// the shard's effect buffer instead of touching the serial queue).
type localScheduler interface {
	ScheduleAfterLocal(delay float64, name string, keys []int, fn func(*sim.Proc)) (sim.Handle, error)
}

// Start installs the model's first phase on the hosts and schedules the
// phase transitions. Single-phase models (and FixedActivity runs) install
// the steady profile once and never transition. The initial installation
// error surfaces (a halted host cannot take work); transition errors are
// swallowed exactly like the scheduler's own workload callbacks — a node
// that halts mid-job is reported through the node-failure path, not here.
func Start(engine *sim.Engine, ops NodeOps, m *Model, hosts []string, opts ExecOptions) (*Execution, error) {
	if engine == nil || ops == nil || m == nil {
		return nil, fmt.Errorf("workload: Start needs an engine, node ops and a model")
	}
	ex := &Execution{engine: engine, ops: ops, model: m, hosts: append([]string(nil), hosts...), opts: opts}
	if keyer, ok := ops.(NodeKeyer); ok {
		ex.keys = keyer.NodeKeys(ex.hosts)
	}
	if len(m.Phases) > 1 && !opts.FixedActivity {
		// Declare the model's phase cadence as a cross-shard edge: the
		// shortest phase bounds how soon this execution can next mutate
		// shared node state. Phase durations (tens of seconds) are far
		// above the cluster's integration step, so this never binds the
		// window span in practice — it is the declaration that matters
		// for anyone auditing the engine's lookahead inputs.
		min := m.Phases[0].Seconds
		for _, p := range m.Phases[1:] {
			if p.Seconds < min {
				min = p.Seconds
			}
		}
		engine.DeclareLookahead("workload."+m.Name, min)
	}
	if opts.FixedActivity || len(m.Phases) <= 1 {
		act, label := m.Steady, m.Name
		if !opts.FixedActivity && len(m.Phases) == 1 {
			act, label = m.Phases[0].Activity, m.Name+"/"+m.Phases[0].Name
		}
		if err := ops.RunWorkloadOn(ex.hosts, label, act, m.MemBytes); err != nil {
			return nil, err
		}
		return ex, nil
	}
	ex.transName = "workload.phase(" + m.Name + ")"
	if ex.keys != nil {
		ex.localFn = func(p *sim.Proc) {
			ex.next = sim.Handle{}
			_ = ex.install(p, (ex.phase+1)%len(ex.model.Phases), false)
		}
	} else {
		ex.transFn = func(*sim.Engine) {
			ex.next = sim.Handle{}
			_ = ex.install(engine, (ex.phase+1)%len(ex.model.Phases), false)
		}
	}
	if err := ex.install(engine, 0, true); err != nil {
		return nil, err
	}
	return ex, nil
}

// install applies phase i and schedules the next transition through sched
// (the engine at Start, the executing Proc inside a transition). The first
// installation propagates errors; later ones best-effort them away.
func (ex *Execution) install(sched localScheduler, i int, first bool) error {
	ex.phase = i
	p := ex.model.Phases[i]
	err := ex.ops.RunWorkloadOn(ex.hosts, ex.model.Name+"/"+p.Name, p.Activity, ex.model.MemBytes)
	if first && err != nil {
		return err
	}
	// A phase transition only re-drives the nodes of its own allocation, so
	// with shard keys in hand it is LOCAL: its callback mutates only the
	// allocation's node state and reschedules itself, which a sharded engine
	// executes entirely on the owning shard's worker when the allocation
	// maps to one shard (the partitioner demotes multi-shard allocations to
	// the serial loop — slower, never less correct).
	dur := p.Seconds
	if ex.opts.SlowFactor > 1 {
		dur *= ex.opts.SlowFactor
	}
	var ev sim.Handle
	var serr error
	if ex.keys != nil {
		ev, serr = sched.ScheduleAfterLocal(dur, ex.transName, ex.keys, ex.localFn)
	} else {
		ev, serr = ex.engine.ScheduleAfter(dur, ex.transName, ex.transFn)
	}
	if serr != nil {
		// Unreachable: phase durations are validated positive.
		panic(fmt.Sprintf("workload: schedule phase: %v", serr))
	}
	ex.next = ev
	return nil
}

// Phase returns the name of the currently installed phase ("" for
// steady/fixed runs).
func (ex *Execution) Phase() string {
	if ex.opts.FixedActivity || len(ex.model.Phases) <= 1 {
		return ""
	}
	return ex.model.Phases[ex.phase].Name
}

// Stop cancels the pending phase transition and clears the workload from
// the allocation. Safe to call more than once.
func (ex *Execution) Stop() {
	if ex.stopped {
		return
	}
	ex.stopped = true
	ex.next.Cancel()
	ex.next = sim.Handle{}
	ex.ops.ClearWorkloadOn(ex.hosts)
}
