package workload

import (
	"fmt"

	"montecimone/internal/power"
	"montecimone/internal/sim"
)

// NodeOps is the slice of the cluster the phased executor drives. The
// cluster facade implements it; the indirection keeps this package free of
// the hardware assembly (and lets tests substitute a recorder).
type NodeOps interface {
	// RunWorkloadOn installs an activity on the named hosts.
	RunWorkloadOn(hosts []string, name string, act power.Activity, memBytes float64) error
	// ClearWorkloadOn returns the named hosts to idle (halted hosts are
	// skipped by the implementation).
	ClearWorkloadOn(hosts []string)
}

// ExecOptions tunes a phased execution.
type ExecOptions struct {
	// FixedActivity disables phase interleaving: the job runs at the
	// model's Steady profile for its whole life (the campaign benchmark's
	// ablation, and the exact behaviour of the pre-registry code).
	FixedActivity bool
}

// Execution is one workload running on an allocation, advancing through
// the model's phase cycle on the discrete-event engine. Stop it when the
// job ends (the campaign runner wires Stop into the scheduler's OnEnd).
type Execution struct {
	engine *sim.Engine
	ops    NodeOps
	model  *Model
	hosts  []string
	opts   ExecOptions

	phase   int
	next    *sim.Event
	stopped bool
}

// Start installs the model's first phase on the hosts and schedules the
// phase transitions. Single-phase models (and FixedActivity runs) install
// the steady profile once and never transition. The initial installation
// error surfaces (a halted host cannot take work); transition errors are
// swallowed exactly like the scheduler's own workload callbacks — a node
// that halts mid-job is reported through the node-failure path, not here.
func Start(engine *sim.Engine, ops NodeOps, m *Model, hosts []string, opts ExecOptions) (*Execution, error) {
	if engine == nil || ops == nil || m == nil {
		return nil, fmt.Errorf("workload: Start needs an engine, node ops and a model")
	}
	ex := &Execution{engine: engine, ops: ops, model: m, hosts: append([]string(nil), hosts...), opts: opts}
	if opts.FixedActivity || len(m.Phases) <= 1 {
		act, label := m.Steady, m.Name
		if !opts.FixedActivity && len(m.Phases) == 1 {
			act, label = m.Phases[0].Activity, m.Name+"/"+m.Phases[0].Name
		}
		if err := ops.RunWorkloadOn(ex.hosts, label, act, m.MemBytes); err != nil {
			return nil, err
		}
		return ex, nil
	}
	if err := ex.install(0, true); err != nil {
		return nil, err
	}
	return ex, nil
}

// install applies phase i and schedules the next transition. The first
// installation propagates errors; later ones best-effort them away.
func (ex *Execution) install(i int, first bool) error {
	ex.phase = i
	p := ex.model.Phases[i]
	err := ex.ops.RunWorkloadOn(ex.hosts, ex.model.Name+"/"+p.Name, p.Activity, ex.model.MemBytes)
	if first && err != nil {
		return err
	}
	ev, serr := ex.engine.ScheduleAfter(p.Seconds, "workload.phase("+ex.model.Name+")", func(*sim.Engine) {
		ex.next = nil
		_ = ex.install((ex.phase+1)%len(ex.model.Phases), false)
	})
	if serr != nil {
		// Unreachable: phase durations are validated positive.
		panic(fmt.Sprintf("workload: schedule phase: %v", serr))
	}
	ex.next = ev
	return nil
}

// Phase returns the name of the currently installed phase ("" for
// steady/fixed runs).
func (ex *Execution) Phase() string {
	if ex.opts.FixedActivity || len(ex.model.Phases) <= 1 {
		return ""
	}
	return ex.model.Phases[ex.phase].Name
}

// Stop cancels the pending phase transition and clears the workload from
// the allocation. Safe to call more than once.
func (ex *Execution) Stop() {
	if ex.stopped {
		return
	}
	ex.stopped = true
	if ex.next != nil {
		ex.next.Cancel()
		ex.next = nil
	}
	ex.ops.ClearWorkloadOn(ex.hosts)
}
