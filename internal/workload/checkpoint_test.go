package workload

import (
	"testing"

	"montecimone/internal/power"
)

func phasedModel() *Model {
	return &Model{
		Name: "test.phased",
		Phases: []Phase{
			{Name: "a", Seconds: 30, Activity: power.Activity{}},
			{Name: "b", Seconds: 70, Activity: power.Activity{}},
		},
	}
}

func TestRestartPointPhased(t *testing.T) {
	m := phasedModel() // 100 s cycle with boundaries at 30 and 100
	cases := []struct{ elapsed, want float64 }{
		{0, 0},
		{10, 0},      // inside phase a: nothing completed
		{30, 30},     // exactly the a/b boundary
		{99, 30},     // inside phase b
		{100, 100},   // one whole cycle
		{250, 230},   // 2 cycles + phase a
		{300, 300},   // exact cycle multiple
		{329.9, 300}, // tail inside phase a of cycle 4
	}
	for _, c := range cases {
		if got := RestartPoint(m, c.elapsed, 0); got != c.want {
			t.Errorf("RestartPoint(phased, %.1f) = %.1f, want %.1f", c.elapsed, got, c.want)
		}
	}
}

func TestRestartPointSinglePhaseInterval(t *testing.T) {
	m := &Model{Name: "test.flat", Phases: []Phase{{Name: "only", Seconds: 50}}}
	if got := RestartPoint(m, 130, 40); got != 120 {
		t.Errorf("interval restart = %.1f, want 120", got)
	}
	if got := RestartPoint(m, 130, 0); got != 0 {
		t.Errorf("no-interval restart = %.1f, want 0 (restart from scratch)", got)
	}
	if got := RestartPoint(nil, 130, 40); got != 0 {
		t.Errorf("nil model restart = %.1f, want 0", got)
	}
}

// TestRestartPointNeverExceedsElapsed is the safety property the requeue
// path relies on: resuming can never claim more progress than was made.
func TestRestartPointNeverExceedsElapsed(t *testing.T) {
	m := phasedModel()
	for _, elapsed := range []float64{0.5, 29.99, 30.01, 99.99, 100.01, 1234.5} {
		if got := RestartPoint(m, elapsed, 0); got > elapsed {
			t.Errorf("RestartPoint(%.2f) = %.2f exceeds elapsed", elapsed, got)
		}
	}
}
