package workload

import (
	"math"
	"strings"
	"testing"

	"montecimone/internal/power"
)

// The registry must hold exactly the paper's catalogue, sorted.
func TestRegistryNames(t *testing.T) {
	want := []string{"hpl", "idle", "mpi.pingpong", "qe", "stream.ddr", "stream.l2"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// Lookup must resolve every registered model and reject unknown names with
// an error that lists the registry (the CLI-typo experience).
func TestLookup(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, m.Name)
		}
	}
	_, err := Lookup("doom")
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("lookup error %q does not list %q", err, name)
		}
	}
}

// The steady profiles are the calibrated Table VI activities — the
// registry must hand out exactly the power package's presets so the
// physics (and the regenerated paper artifacts) cannot drift.
func TestSteadyMatchesTableVI(t *testing.T) {
	cases := map[string]power.Activity{
		"hpl":        power.ActivityHPL,
		"stream.ddr": power.ActivityStreamDDR,
		"stream.l2":  power.ActivityStreamL2,
		"qe":         power.ActivityQE,
		"idle":       power.ActivityIdle,
	}
	for name, want := range cases {
		if got := MustLookup(name).Steady; got != want {
			t.Errorf("%s steady = %+v, want %+v", name, got, want)
		}
	}
}

// Phased models must reproduce their steady profile in the time-weighted
// mean (within 2 %), so phase interleaving dissipates the same mean power
// as the fixed-activity ablation.
func TestPhaseMeanReproducesSteady(t *testing.T) {
	pm := power.NewModel()
	for _, name := range Names() {
		m := MustLookup(name)
		if len(m.Phases) <= 1 {
			continue
		}
		mean := m.MeanPhaseActivity()
		steadyW := pm.TotalMilliwatts(power.PhaseRun, m.Steady)
		meanW := pm.TotalMilliwatts(power.PhaseRun, mean)
		if rel := math.Abs(meanW-steadyW) / steadyW; rel > 0.02 {
			t.Errorf("%s: phase-mean power %f mW vs steady %f mW (%.1f%% off)",
				name, meanW, steadyW, 100*rel)
		}
		if m.CycleSeconds() <= 0 {
			t.Errorf("%s: non-positive cycle", name)
		}
	}
}

// Runtime estimates are wired to the kernel simulators: HPL must show
// strong scaling, QE must match the paper's single-node 37.4 s, STREAM's
// DDR set must take longer than the L2 set, and the MPI sweep must need
// two nodes.
func TestRuntimeEstimates(t *testing.T) {
	hpl1, err := MustLookup("hpl").Runtime(1)
	if err != nil {
		t.Fatal(err)
	}
	hpl8, err := MustLookup("hpl").Runtime(8)
	if err != nil {
		t.Fatal(err)
	}
	if hpl8 >= hpl1 {
		t.Errorf("hpl runtime does not scale: 1 node %.0f s, 8 nodes %.0f s", hpl1, hpl8)
	}
	qe1, err := MustLookup("qe").Runtime(1)
	if err != nil {
		t.Fatal(err)
	}
	if qe1 < 30 || qe1 > 45 {
		t.Errorf("qe runtime %.1f s, want ~37.4 s", qe1)
	}
	ddr, err := MustLookup("stream.ddr").Runtime(1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := MustLookup("stream.l2").Runtime(1)
	if err != nil {
		t.Fatal(err)
	}
	if ddr <= l2 {
		t.Errorf("stream.ddr runtime %.2f s not above stream.l2 %.2f s", ddr, l2)
	}
	if _, err := MustLookup("mpi.pingpong").Runtime(1); err == nil {
		t.Error("mpi.pingpong accepted a single node")
	}
	pp, err := MustLookup("mpi.pingpong").Runtime(2)
	if err != nil {
		t.Fatal(err)
	}
	if pp <= 0 {
		t.Errorf("mpi.pingpong runtime %v", pp)
	}
	if MustLookup("idle").Runtime != nil {
		t.Error("idle has a runtime estimate")
	}
}

// Performance estimates surface the simulators' headline numbers.
func TestPerformanceEstimates(t *testing.T) {
	p, err := MustLookup("hpl").Performance(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Unit != "GFLOP/s" || p.Value < 10 || p.Value > 16 {
		t.Errorf("hpl 8-node perf = %+v, want ~12.6 GFLOP/s", p)
	}
	p, err = MustLookup("stream.ddr").Performance(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Unit != "triad-MB/s" || p.Value <= 0 {
		t.Errorf("stream.ddr perf = %+v", p)
	}
}

// Register must reject duplicates and malformed models.
func TestRegisterValidation(t *testing.T) {
	if err := Register(&Model{Name: "hpl"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(&Model{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(&Model{Name: "bad-phase", Phases: []Phase{{Name: "p", Seconds: 0}}}); err == nil {
		t.Error("zero-duration phase accepted")
	}
}
