package report

import (
	"math"
	"strings"
	"testing"

	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/spack"
)

func TestTableWrite(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"A", "BB"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "22")
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "BB") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns aligned: "BB" column starts at the same offset in all rows.
	idx := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != idx {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableIRendering(t *testing.T) {
	rows := []spack.StackRow{{Package: "hpl", Version: "2.3"}}
	var sb strings.Builder
	if err := TableI(rows).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hpl") || !strings.Contains(sb.String(), "2.3") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestFig2Rendering(t *testing.T) {
	points := []core.ScalingPoint{{
		Nodes: 8, P: 4, Q: 8,
		MeanGFlops: 12.16, StdGFlops: 0.39,
		MeanSeconds: 3701, StdSeconds: 120,
		Speedup: 6.47, LinearFraction: 0.809,
	}}
	var sb strings.Builder
	if err := Fig2(points).Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4x8", "12.16 +- 0.39", "80.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(ramp)) != 4 {
		t.Fatalf("ramp = %q", ramp)
	}
	runes := []rune(ramp)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("ramp extremes = %q", ramp)
	}
	// Numerically flat series with epsilon noise renders flat.
	flat := Sparkline([]float64{1e9, 1e9 * (1 + 1e-12), 1e9})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", flat)
		}
	}
	// NaN cells render as spaces.
	withGap := Sparkline([]float64{1, math.NaN(), 2})
	if []rune(withGap)[1] != ' ' {
		t.Errorf("gap = %q", withGap)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	ds := Downsample(vals, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[0] != 4.5 || ds[9] != 94.5 {
		t.Errorf("ds = %v", ds)
	}
	// Short inputs pass through.
	if got := Downsample(vals[:5], 10); len(got) != 5 {
		t.Errorf("short input resized to %d", len(got))
	}
	// All-NaN windows stay NaN.
	nan := Downsample([]float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}, 2)
	if !math.IsNaN(nan[0]) {
		t.Errorf("nan window = %v", nan)
	}
}

func TestTableRenderers(t *testing.T) {
	// Exercise every table renderer against live experiment outputs.
	var sb strings.Builder

	if err := TableII(core.TableII()).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dstat_pub") {
		t.Error("TableII missing plugin names")
	}

	sb.Reset()
	samples := []core.MetricSample{{Metric: "load_avg.1m", Value: 3.5}}
	if err := TableIII(samples).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "load_avg.1m") || !strings.Contains(sb.String(), "3.5") {
		t.Errorf("TableIII = %q", sb.String())
	}

	sb.Reset()
	sensors := []core.SensorRow{{Sensor: "cpu_temp", SysfsFile: "/sys/x", MilliC: 45000}}
	if err := TableIV(sensors).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "45000") {
		t.Errorf("TableIV = %q", sb.String())
	}

	sb.Reset()
	tbl, err := core.TableV(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := TableV(tbl).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "triad") {
		t.Error("TableV missing kernels")
	}

	sb.Reset()
	if err := TableVI(core.TableVI()).Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ddr_mem", "Boot R1", "Total", "4810"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableVI missing %q", want)
		}
	}
}

func TestHeatmapRendering(t *testing.T) {
	hm := &examon.Heatmap{
		Nodes:    []string{"mc01", "mc02"},
		BinWidth: 1,
		Values:   [][]float64{{1, 2, 3}, {3, 2, 1}},
	}
	out := Heatmap("demo", hm)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "mc01") {
		t.Errorf("heatmap = %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("heatmap lines = %d", lines)
	}
}

func TestEfficiencyRendering(t *testing.T) {
	rows := []core.EfficiencyRow{
		{Machine: "Monte Cimone", ISA: "rv64gcb", Efficiency: 0.474, Attained: 1.9},
	}
	var sb strings.Builder
	if err := Efficiency("t", "GFLOP/s", rows).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "47.40") {
		t.Errorf("output = %q", sb.String())
	}
}
