// Package report renders the reproduction's tables and figures as aligned
// text, in the same row/series shapes the paper prints. It is shared by
// the mcrun CLI, the examples and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"montecimone/internal/core"
	"montecimone/internal/examon"
	"montecimone/internal/power"
	"montecimone/internal/spack"
)

// Table is a simple aligned text table.
type Table struct {
	// Title is printed above the header.
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// TableI renders the software-stack table.
func TableI(rows []spack.StackRow) *Table {
	t := &Table{Title: "Table I: user-facing software stack (Spack, linux-sifive-u74mc)",
		Headers: []string{"Package", "Version"}}
	for _, r := range rows {
		t.AddRow(r.Package, r.Version)
	}
	return t
}

// TableII renders the ExaMon topic formats.
func TableII(rows []core.TopicSpec) *Table {
	t := &Table{Title: "Table II: ExaMon topic and payload formats",
		Headers: []string{"Plugin", "Topic", "Payload"}}
	for _, r := range rows {
		t.AddRow(r.Plugin, r.Topic, r.Payload)
	}
	return t
}

// TableIII renders the stats_pub metrics with live values.
func TableIII(rows []core.MetricSample) *Table {
	t := &Table{Title: "Table III: metrics collected by the stats_pub plugin (live sample)",
		Headers: []string{"Metric", "Value"}}
	for _, r := range rows {
		t.AddRow(r.Metric, fmt.Sprintf("%.4g", r.Value))
	}
	return t
}

// TableIV renders the hwmon sensor map.
func TableIV(rows []core.SensorRow) *Table {
	t := &Table{Title: "Table IV: sysfs entries for the temperature sensors",
		Headers: []string{"Sensor", "Sysfs File", "Reading [mC]"}}
	for _, r := range rows {
		t.AddRow(r.Sensor, r.SysfsFile, fmt.Sprintf("%d", r.MilliC))
	}
	return t
}

// TableV renders the STREAM table.
func TableV(tbl *core.StreamTable) *Table {
	t := &Table{Title: "Table V: STREAM, 4 threads [MB/s]",
		Headers: []string{"Test", "STREAM.DDR (1945.5 MiB)", "STREAM.L2 (1.1 MiB)"}}
	for i := range tbl.DDR {
		t.AddRow(tbl.DDR[i].Kernel.String(),
			fmt.Sprintf("%.0f +- %.2f", tbl.DDR[i].MeanMBps, tbl.DDR[i].StdMBps),
			fmt.Sprintf("%.0f +- %.2f", tbl.L2[i].MeanMBps, tbl.L2[i].StdMBps))
	}
	return t
}

// TableVI renders the power-rail table.
func TableVI(cols []core.PowerColumn) *Table {
	headers := []string{"Line"}
	for _, c := range cols {
		headers = append(headers, c.Workload+" [mW]", "[%]")
	}
	t := &Table{Title: "Table VI: power consumption", Headers: headers}
	for _, rail := range power.Rails {
		row := []string{string(rail)}
		for _, c := range cols {
			row = append(row,
				fmt.Sprintf("%.0f", c.Rails[rail]),
				fmt.Sprintf("%.0f", c.Percent[rail]))
		}
		t.AddRow(row...)
	}
	totalRow := []string{"Total"}
	for _, c := range cols {
		totalRow = append(totalRow, fmt.Sprintf("%.0f", c.TotalMilliwatts), "100")
	}
	t.AddRow(totalRow...)
	return t
}

// Fig2 renders the strong-scaling series.
func Fig2(points []core.ScalingPoint) *Table {
	t := &Table{Title: "Fig. 2: HPL strong scaling @ Monte Cimone [N=40704, NB=192]",
		Headers: []string{"Nodes", "Grid", "GFLOP/s", "Runtime [s]", "Speedup", "% of linear"}}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%dx%d", p.P, p.Q),
			fmt.Sprintf("%.2f +- %.2f", p.MeanGFlops, p.StdGFlops),
			fmt.Sprintf("%.0f +- %.0f", p.MeanSeconds, p.StdSeconds),
			fmt.Sprintf("%.2f", p.Speedup),
			fmt.Sprintf("%.1f", 100*p.LinearFraction),
		)
	}
	return t
}

// Efficiency renders a cross-machine efficiency comparison.
func Efficiency(title, unit string, rows []core.EfficiencyRow) *Table {
	t := &Table{Title: title, Headers: []string{"Machine", "ISA", "Attained " + unit, "Efficiency [%]"}}
	for _, r := range rows {
		t.AddRow(r.Machine, string(r.ISA),
			fmt.Sprintf("%.1f", r.Attained),
			fmt.Sprintf("%.2f", 100*r.Efficiency))
	}
	return t
}

// Sparkline renders a series of values as a compact unicode strip, used to
// print trace shapes and heatmap rows in the terminal.
func Sparkline(values []float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	// Treat numerically flat series as flat: differences below a relative
	// epsilon are sampling artefacts, not signal.
	span := hi - lo
	if span <= 1e-6*math.Max(math.Abs(hi), math.Abs(lo)) {
		span = 0
	}
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * 7.999)
		}
		sb.WriteRune([]rune(ramp)[idx])
	}
	return sb.String()
}

// Heatmap renders an examon heatmap with one sparkline row per node.
func Heatmap(title string, hm *examon.Heatmap) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for i, nodeName := range hm.Nodes {
		sb.WriteString(fmt.Sprintf("  %-6s %s\n", nodeName, Sparkline(hm.Values[i])))
	}
	return sb.String()
}

// Downsample reduces a series to at most width points by averaging, for
// terminal sparklines.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		sum, n := 0.0, 0
		for _, v := range values[lo:hi] {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n > 0 {
			out[i] = sum / float64(n)
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}
