// Package node models one Monte Cimone compute node: a HiFive Unmatched
// board (SiFive Freedom U740, 16 GiB DDR4, 1 TB NVMe, 1 GbE) inside an E4
// RV007 blade slot, with its nine monitored power rails, three hwmon
// temperature sensors, per-hart performance counters and the operating
// system statistics collected by the ExaMon stats_pub plugin.
//
// The node follows the boot state machine of the paper's Fig. 4: power-on
// (R1, supply only), bootloader (R2, PLL and clock tree active, DDR
// training), then the operating system (R3), after which workloads modulate
// the rail powers. A thermal trip at 107 degC halts the node, as observed
// on node 7 during the first HPL runs.
package node

import (
	"fmt"
	"math"

	"montecimone/internal/perf"
	"montecimone/internal/power"
	"montecimone/internal/soc"
	"montecimone/internal/thermal"
)

// Boot timing relative to the power button (Fig. 4: power applied at ~4 s,
// PLL activation at ~10 s, OS idle from ~40 s).
const (
	// R1Duration is the supply-only region before the PLL activates.
	R1Duration = 6.0
	// R2Duration is the bootloader region, ending with a ramp as the OS
	// boots; RampDuration is the tail of R2 during which core power climbs
	// from the R2 floor to the OS idle floor.
	R2Duration   = 30.0
	RampDuration = 10.0
)

// State is the node's life-cycle state.
type State int

// Transition identifies a state change the node reports through the
// OnTransition callback while integrating (demand-driven co-simulation
// needs push notifications: with no global ticker, nobody polls states).
type Transition int

// Reported transitions.
const (
	// TransitionBootComplete fires when the node leaves the bootloader and
	// the OS is up (StateBooting -> StateRunning).
	TransitionBootComplete Transition = iota + 1
	// TransitionHalt fires when the 107 degC thermal trip halts the node.
	TransitionHalt
)

// Node states.
const (
	StateOff State = iota + 1
	StateBooting
	StateRunning
	StateHalted // thermal trip; requires power cycle
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StateHalted:
		return "halted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes one node.
type Config struct {
	// ID is the 1-based node number (1..8 on Monte Cimone).
	ID int
	// Slot is the 0-based blade slot for the thermal environment;
	// defaults to ID-1.
	Slot int
	// Machine is the SoC model; defaults to soc.FU740().
	Machine *soc.Machine
	// Enclosure is the chassis configuration shared by the cluster.
	Enclosure thermal.Enclosure
	// HPMPatch applies the authors' U-Boot patch enabling the
	// programmable performance counters.
	HPMPatch bool
}

// Node is a simulated compute node. Not safe for concurrent use; the
// cluster drives all nodes from the single simulation goroutine.
type Node struct {
	id       int
	hostname string
	machine  *soc.Machine
	pm       *power.Model
	tm       *thermal.Model
	pmu      *perf.PMU

	state     State
	poweredAt float64
	now       float64

	workload  string
	act       power.Activity
	freqScale float64 // DVFS scale in (0,1]; 1 = nominal 1.2 GHz

	// Demand-driven integration state. clock, when set, supplies the
	// current virtual time so public reads can lazily integrate up to the
	// observation instant; base is the internal Euler substep and
	// gridNext the next substep boundary. Observations at arbitrary
	// instants take partial steps WITHOUT moving the grid — exactly how
	// a mid-period read interleaves with the lock-step ticker — so both
	// integration modes walk the same Euler step sequence.
	clock        func() float64
	base         float64
	gridNext     float64
	syncing      bool
	onTransition func(kind Transition, at float64)
	onInput      func()
	modelSteps   uint64
	haltedAt     float64

	// Cached thermal equilibrium for the current inputs (solving the
	// leakage fixed point costs hundreds of iterations; inputs change
	// rarely, observations happen constantly). Invalidated on any input
	// change and on state transitions.
	ssCache  thermal.Steady
	ssStable bool
	ssValid  bool

	// OS statistics state.
	load1, load5, load15      float64
	memUsedBytes              float64
	rxBps, txBps              float64
	ioReadBps, ioWriteBps     float64
	rxTotal, txTotal          float64
	ioReadTotal, ioWriteTotal float64
	intsTotal, cswTotal       float64
	procsNewTotal             float64
}

// New builds a node in the powered-off state.
func New(cfg Config) (*Node, error) {
	if cfg.ID <= 0 {
		return nil, fmt.Errorf("node: id must be positive, got %d", cfg.ID)
	}
	machine := cfg.Machine
	if machine == nil {
		machine = soc.FU740()
	}
	if err := machine.Validate(); err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	slot := cfg.Slot
	if slot == 0 && cfg.ID-1 < thermal.NumSlots {
		slot = cfg.ID - 1
	}
	tm, err := thermal.NewModel(cfg.Enclosure, slot)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	pmu, err := perf.NewPMU(machine.Cores, machine.ClockHz, 2 /* dual issue */, machine.CacheLineBytes, cfg.HPMPatch)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	return &Node{
		id:           cfg.ID,
		hostname:     fmt.Sprintf("%s%02d", machine.HostPrefix, cfg.ID),
		machine:      machine,
		pm:           power.NewModel(),
		tm:           tm,
		pmu:          pmu,
		state:        StateOff,
		freqScale:    1,
		base:         0.1,
		gridNext:     0.1,
		haltedAt:     -1,
		memUsedBytes: 350e6, // resident OS baseline
	}, nil
}

// Demand-driven integration tuning.
const (
	// quiescentEpsC is how close (in kelvin) every sensor must sit to its
	// stable equilibrium before the integrator may leave the fine Euler
	// grid for the closed-form relaxation. Small enough that coarse-path
	// temperatures match the lock-step trajectory at any reporting
	// precision; large enough that idle nodes go quiescent within a
	// thermal time constant or two.
	quiescentEpsC = 1e-3
	// hotThresholdC is the junction temperature above which a node is
	// "hot": its watchdog refines to the base step so the trip latches at
	// the same substep as under lock-step integration.
	hotThresholdC = thermal.TripTempC - 10
	// syncSnapSec folds floating-point dust between independently
	// accumulated tick chains into the neighbouring substep instead of
	// emitting nanosecond-scale extra Euler steps.
	syncSnapSec = 1e-7
)

// ID returns the 1-based node number.
func (n *Node) ID() int { return n.id }

// Hostname returns the node's hostname ("mc01" ... "mc08").
func (n *Node) Hostname() string { return n.hostname }

// Machine returns the SoC model.
func (n *Node) Machine() *soc.Machine { return n.machine }

// PMU exposes the performance-counter unit (read by the pmu_pub plugin).
func (n *Node) PMU() *perf.PMU { return n.pmu }

// Thermal exposes the thermal model (used for enclosure changes).
func (n *Node) Thermal() *thermal.Model { return n.tm }

// State returns the life-cycle state at the clock's current instant.
func (n *Node) State() State {
	n.observe()
	return n.state
}

// Workload returns the running workload name; empty when idle.
func (n *Node) Workload() string { return n.workload }

// SetClock installs the virtual-time source that makes the node
// demand-driven: public observations (temperatures, stats, hwmon reads,
// rail powers, state) first integrate the model lazily up to clock().
// With a nil clock (the default, and the lock-step ablation) observations
// return the state as of the last explicit Step, exactly as the global
// ticker left it.
func (n *Node) SetClock(clock func() float64) { n.clock = clock }

// SetBaseStep sets the internal Euler substep used while the node is
// thermally active (default 0.1 s, the paper runs' integration period).
func (n *Node) SetBaseStep(h float64) error {
	if h <= 0 {
		return fmt.Errorf("node %s: base step must be positive, got %v", n.hostname, h)
	}
	n.base = h
	n.gridNext = n.now + h
	return nil
}

// OnTransition registers the state-change notification callback (boot
// completion, thermal halt). The callback receives the virtual time the
// transition was integrated at, which can precede the engine clock when
// the transition is discovered during a lazy catch-up sync.
func (n *Node) OnTransition(fn func(kind Transition, at float64)) { n.onTransition = fn }

// OnInputChange registers a callback fired after any model input changes
// (workload, DVFS point, IO/net rates, power button, enclosure). The
// cluster uses it to re-plan the node's integration watchdog.
func (n *Node) OnInputChange(fn func()) { n.onInput = fn }

// ModelSteps returns the number of Euler substeps integrated so far — the
// physics cost metric the demand-driven refactor minimises (closed-form
// quiescent relaxations are not counted; they replace entire step runs).
func (n *Node) ModelSteps() uint64 { return n.modelSteps }

// HaltedAt returns the virtual time the thermal trip halted the node, or
// -1 if it never tripped. The value is the integration substep that
// crossed the trip temperature, which makes halt times comparable across
// lock-step and demand-driven runs.
func (n *Node) HaltedAt() float64 { return n.haltedAt }

// BootDeadline returns the virtual time the current boot completes (only
// meaningful while booting). Exposing it — rather than having callers add
// R1Duration+R2Duration themselves — keeps deadline arithmetic correct if
// boot timings ever become configurable.
func (n *Node) BootDeadline() float64 { return n.poweredAt + R1Duration + R2Duration }

// observe lazily integrates up to the clock's current instant before a
// public read. No-op without a clock (lock-step mode) or while already
// integrating.
func (n *Node) observe() {
	if n.clock != nil && !n.syncing {
		n.SyncTo(n.clock())
	}
}

// inputsChanged notifies the watchdog planner after a model input changed.
func (n *Node) inputsChanged() {
	n.ssValid = false
	if n.onInput != nil {
		n.onInput()
	}
}

// steady returns the thermal equilibrium for the current inputs, cached
// until the next input change or state transition. Only meaningful
// outside the boot phases (power there depends on time, not just inputs).
func (n *Node) steady() (thermal.Steady, bool) {
	if !n.ssValid {
		n.ssCache, n.ssStable = n.tm.Steady(n.totalMilliwatts()/1000, n.nvmeWatts())
		n.ssValid = true
	}
	return n.ssCache, n.ssStable
}

// PowerOn presses the power button at virtual time now. Each compute node
// has its own 250 W PSU and can be powered individually.
func (n *Node) PowerOn(now float64) error {
	n.observe() // integrate the powered-off cooling up to this instant
	if n.state != StateOff {
		return fmt.Errorf("node %s: power-on in state %s", n.hostname, n.state)
	}
	n.state = StateBooting
	n.poweredAt = now
	n.now = now
	n.gridNext = now + n.base
	n.haltedAt = -1
	n.inputsChanged()
	return nil
}

// PowerOff cuts power, clearing any workload and thermal trip latch.
func (n *Node) PowerOff() {
	n.observe()
	n.state = StateOff
	n.workload = ""
	n.act = power.Activity{}
	n.rxBps, n.txBps, n.ioReadBps, n.ioWriteBps = 0, 0, 0, 0
	n.tm.ClearTrip()
	n.inputsChanged()
}

// Phase returns the power phase at the node's current time.
func (n *Node) Phase() power.Phase {
	n.observe()
	return n.phase()
}

// phase is Phase without the lazy sync, for use inside the integrator.
func (n *Node) phase() power.Phase {
	switch n.state {
	case StateOff, StateHalted:
		return power.PhaseOff
	case StateBooting:
		elapsed := n.now - n.poweredAt
		if elapsed < R1Duration {
			return power.PhaseR1
		}
		return power.PhaseR2
	default:
		return power.PhaseRun
	}
}

// SetWorkload installs a workload's activity profile (only meaningful on a
// running node). memBytes is the workload's resident set.
func (n *Node) SetWorkload(name string, act power.Activity, memBytes float64) error {
	n.observe() // integrate the past under the old activity first
	if n.state != StateRunning {
		return fmt.Errorf("node %s: cannot run %q in state %s", n.hostname, name, n.state)
	}
	n.workload = name
	n.act = act
	n.memUsedBytes = 350e6 + memBytes
	n.inputsChanged()
	return nil
}

// ClearWorkload returns the node to idle.
func (n *Node) ClearWorkload() {
	n.observe()
	n.workload = ""
	n.act = power.Activity{}
	n.memUsedBytes = 350e6
	n.inputsChanged()
}

// SetNetRates sets the NIC receive/transmit rates in bytes/s (driven by the
// cluster network model).
func (n *Node) SetNetRates(rxBps, txBps float64) {
	n.observe()
	n.rxBps, n.txBps = rxBps, txBps
	n.inputsChanged()
}

// SetIORates sets NVMe read/write rates in bytes/s.
func (n *Node) SetIORates(readBps, writeBps float64) {
	n.observe()
	n.ioReadBps, n.ioWriteBps = readBps, writeBps
	n.inputsChanged()
}

// SetEnclosure switches the thermal enclosure configuration, integrating
// the past under the old environment first (the paper's airflow mitigation
// was applied to the live machine).
func (n *Node) SetEnclosure(enc thermal.Enclosure) error {
	n.observe()
	if err := n.tm.SetEnclosure(enc); err != nil {
		return err
	}
	n.inputsChanged()
	return nil
}

// InjectThermalFault layers an airflow defect (extra junction-to-air
// resistance, extra inlet-air rise) onto the node's slot environment,
// integrating the past under the healthy environment first. Fault
// campaigns use it to reproduce the node 7 failure mode on demand: a
// supercritical fault leaves the SoC with no equilibrium below 107 degC
// and the node walks the genuine runaway-to-trip path.
func (n *Node) InjectThermalFault(extraRthKW, extraAirRiseC float64) {
	n.observe()
	n.tm.InjectAirflowFault(extraRthKW, extraAirRiseC)
	n.inputsChanged()
}

// ClearThermalFault removes an injected airflow defect (the repair half of
// a fault cycle); the trip latch, if engaged, still needs a power cycle.
func (n *Node) ClearThermalFault() {
	n.observe()
	n.tm.ClearAirflowFault()
	n.inputsChanged()
}

// Activity returns the current workload activity profile.
func (n *Node) Activity() power.Activity { return n.act }

// MinFreqScale is the governor's lowest operating point (the U740's OPP
// table bottoms out around 40 % of nominal).
const MinFreqScale = 0.4

// SetFrequencyScale sets the DVFS operating point in [MinFreqScale, 1].
// Values outside the range clamp. The scale reduces the dynamic share of
// every rail and the instruction/cycle rates proportionally. Setting the
// current value again is not an input change (governors re-assert their
// operating point every control tick).
func (n *Node) SetFrequencyScale(s float64) {
	if s < MinFreqScale {
		s = MinFreqScale
	}
	if s > 1 {
		s = 1
	}
	if s == n.freqScale {
		return
	}
	n.observe()
	n.freqScale = s
	n.inputsChanged()
}

// FrequencyScale returns the current DVFS operating point.
func (n *Node) FrequencyScale() float64 { return n.freqScale }

// RailMilliwatts returns the instantaneous power of one rail, including
// the boot ramp from the R2 floor towards the OS idle floor during the
// last RampDuration seconds of the bootloader region, and the DVFS
// operating point while the OS runs.
func (n *Node) RailMilliwatts(r power.Rail) float64 {
	n.observe()
	return n.railMilliwatts(r)
}

// railMilliwatts is RailMilliwatts without the lazy sync (integrator use).
func (n *Node) railMilliwatts(r power.Rail) float64 {
	phase := n.phase()
	if phase == power.PhaseRun {
		return n.pm.RailMilliwattsScaled(r, phase, n.act, n.freqScale)
	}
	base := n.pm.RailMilliwatts(r, phase, n.act)
	if phase != power.PhaseR2 {
		return base
	}
	elapsed := n.now - n.poweredAt
	rampStart := R1Duration + R2Duration - RampDuration
	if elapsed <= rampStart {
		return base
	}
	frac := (elapsed - rampStart) / RampDuration
	idle := n.pm.RailMilliwatts(r, power.PhaseRun, power.Activity{})
	return base + frac*(idle-base)
}

// TotalMilliwatts sums all nine rails.
func (n *Node) TotalMilliwatts() float64 {
	n.observe()
	return n.totalMilliwatts()
}

func (n *Node) totalMilliwatts() float64 {
	total := 0.0
	for _, r := range power.Rails {
		total += n.railMilliwatts(r)
	}
	return total
}

// Temperature returns a sensor reading in degC.
func (n *Node) Temperature(s thermal.Sensor) float64 {
	n.observe()
	return n.tm.Temp(s)
}

// nvmeWatts models NVMe device power from IO activity.
func (n *Node) nvmeWatts() float64 {
	if n.state == StateOff || n.state == StateHalted {
		return 0
	}
	util := (n.ioReadBps + n.ioWriteBps) / 2.0e9 // ~2 GB/s device
	if util > 1 {
		util = 1
	}
	return 0.8 + 3.2*util
}

// Step advances the node to virtual time now with a single Euler step of
// dt = now - last step time. It updates boot progression, thermal state,
// performance counters and OS statistics, and halts the node on a thermal
// trip. Step is the lock-step primitive (the global ticker calls it every
// period); demand-driven callers use SyncTo, which sub-steps adaptively.
func (n *Node) Step(now float64) {
	if n.syncing {
		return
	}
	n.syncing = true
	n.step(now)
	n.syncing = false
}

// SyncTo integrates the node lazily up to virtual time target: fine Euler
// substeps of the base period while the node is thermally active (booting,
// relaxing, or anywhere near the trip temperature), one closed-form
// relaxation for the whole remaining interval once every sensor sits on
// its stable equilibrium. Counters and OS statistics advance exactly in
// either regime (they are linear or exponential in dt). Reads through a
// demand-driven node call this automatically via the installed clock.
func (n *Node) SyncTo(target float64) {
	if n.syncing || target <= n.now {
		return
	}
	n.syncing = true
	defer func() { n.syncing = false }()
	for {
		rem := target - n.now
		if rem <= syncSnapSec {
			// Fold tick-chain floating-point dust into the bookkeeping
			// clock instead of integrating a nanoscale substep.
			if rem > 0 {
				n.now = target
			}
			return
		}
		if n.state != StateBooting {
			if ss, stable := n.steady(); stable && n.tm.NearSteady(ss, quiescentEpsC) {
				n.relax(rem, ss)
				// The trajectory left the Euler grid; re-anchor it here.
				n.gridNext = n.now + n.base
				return
			}
		}
		if n.gridNext <= n.now {
			n.gridNext = n.now + n.base
		}
		switch {
		case target < n.gridNext-syncSnapSec:
			// Observation between grid points: partial step, grid intact
			// (the next substep completes the period, exactly like a
			// mid-period read interleaving with the lock-step ticker).
			n.step(target)
		case target <= n.gridNext+syncSnapSec:
			// The target IS the next grid point modulo accumulated
			// floating-point dust: take the grid step there and adopt
			// the caller's time as the new anchor.
			n.step(target)
			n.gridNext = target + n.base
		default:
			n.step(n.gridNext)
			n.gridNext += n.base
		}
	}
}

// step is one raw Euler substep to absolute time now (no reentrancy guard).
func (n *Node) step(now float64) {
	dt := now - n.now
	if dt < 0 {
		return
	}
	n.now = now
	if dt == 0 {
		return
	}
	n.modelSteps++
	// Boot progression. The snap tolerance keeps the flip on the same
	// substep whether the integration grid reaches the deadline as an
	// accumulated tick chain (which lands a few ulps short of the exact
	// sum) or as the exact boot-deadline wakeup of the demand-driven
	// watchdog.
	if n.state == StateBooting && now-n.poweredAt >= R1Duration+R2Duration-syncSnapSec {
		n.state = StateRunning
		n.ssValid = false // power moves from the boot ramp to the OS floor
		if n.onTransition != nil {
			n.onTransition(TransitionBootComplete, now)
		}
	}

	// Thermal: the SoC dissipates the sum of its rails.
	socW := n.totalMilliwatts() / 1000
	n.tm.Step(dt, socW, n.nvmeWatts())
	if n.tm.Tripped() && n.state != StateHalted {
		// Thermal hazard: the node stops executing (paper, Fig. 6).
		n.state = StateHalted
		n.haltedAt = now
		n.workload = ""
		n.act = power.Activity{}
		n.ssValid = false // power collapsed with the halt
		if n.onTransition != nil {
			n.onTransition(TransitionHalt, now)
		}
	}

	if n.state != StateRunning {
		return
	}
	n.advanceCounters(dt)
}

// relax advances dt seconds through the quiescent fast path: closed-form
// thermal relaxation plus the exact counter updates, with no Euler steps.
func (n *Node) relax(dt float64, ss thermal.Steady) {
	n.tm.RelaxToward(dt, ss)
	n.now += dt
	if n.state == StateRunning {
		n.advanceCounters(dt)
	}
}

// advanceCounters accumulates the performance counters and OS statistics
// over dt seconds of constant activity. Every update is linear or
// exponential in dt, so splitting an interval into substeps and advancing
// it whole agree to floating-point precision.
func (n *Node) advanceCounters(dt float64) {
	// Performance counters.
	n.pmu.Advance(dt, perf.Load{
		CoreActivity:        n.act.CoreActivity,
		DDRReadBytesPerSec:  n.act.DDRReadGBs * 1e9,
		DDRWriteBytesPerSec: n.act.DDRWriteGBs * 1e9,
		ClockScale:          n.freqScale,
	})

	// OS statistics.
	runnable := float64(n.machine.Cores) * n.act.CoreActivity
	if n.workload != "" && runnable < 1 {
		runnable = 1 // at least the benchmark process
	}
	n.load1 += (runnable - n.load1) * ewmaAlpha(dt, 60)
	n.load5 += (runnable - n.load5) * ewmaAlpha(dt, 300)
	n.load15 += (runnable - n.load15) * ewmaAlpha(dt, 900)
	n.rxTotal += n.rxBps * dt
	n.txTotal += n.txBps * dt
	n.ioReadTotal += n.ioReadBps * dt
	n.ioWriteTotal += n.ioWriteBps * dt
	// Interrupts: timer ticks (250 Hz/core) plus NIC interrupts; context
	// switches track interrupts plus scheduler activity.
	n.intsTotal += dt * (250*float64(n.machine.Cores) + n.rxBps/8e3)
	n.cswTotal += dt * (400 + 2000*n.act.CoreActivity)
	n.procsNewTotal += dt * 2
}

// PrepareSafe reports whether the node may be integrated to target off the
// serial event loop (by a shard worker prefetching state for an upcoming
// event). Safe means no state transition — boot completion at the boot
// deadline, thermal trip no earlier than the hot-band watchdog deadline —
// can fire at or before target plus one base step; transitions must fire
// on the serial loop where their callbacks (scheduler node-down, watchdog
// replans) may touch cross-shard state. The one-step margin absorbs the
// partial-step fuzz of observation-instant syncs.
func (n *Node) PrepareSafe(target float64) bool {
	if n.syncing {
		return false
	}
	if target <= n.now {
		return true // already integrated past target; SyncTo is a no-op
	}
	return n.NextDeadline() > target+n.base
}

// PrepareSync integrates the node to exactly target iff PrepareSafe allows
// it, reporting whether it did. The target must be the instant of the
// node's next touching event, so the event's own lazy sync degenerates to
// a no-op and the node's integration-instant sequence stays identical to a
// serial run — the invariant the sharded engine's byte-for-byte
// determinism rests on. Safe to call concurrently for DISTINCT nodes; all
// state it touches is per-node.
func (n *Node) PrepareSync(target float64) bool {
	if !n.PrepareSafe(target) {
		return false
	}
	n.SyncTo(target)
	return true
}

// NextDeadline returns the latest virtual time by which the node must be
// re-synced so state transitions (boot completion, thermal trip) are
// integrated when they happen, or +Inf when the node can idle
// indefinitely (observations still integrate it on demand). The cluster
// schedules one watchdog event per node at this time in demand-driven
// mode.
func (n *Node) NextDeadline() float64 {
	switch n.state {
	case StateBooting:
		return n.BootDeadline()
	case StateRunning:
		ss, stable := n.steady()
		if stable && ss.CPU < hotThresholdC {
			return math.Inf(1) // can never trip under current inputs
		}
		socW := n.totalMilliwatts() / 1000
		// The trajectory can reach hazardous temperatures: refine to the
		// base step inside the hot band so the trip latches on the same
		// substep as under lock-step integration, and back off towards
		// the conservative crossing bound while still cool (the 0.9
		// margin absorbs Euler's slightly-faster-than-exponential
		// approach). Deadlines are whole grid periods so watchdog syncs
		// never split Euler steps.
		periods := math.Floor(0.9 * n.tm.TimeToReach(socW, hotThresholdC) / n.base)
		if periods < 1 {
			periods = 1
		}
		return n.now + periods*n.base
	default:
		return math.Inf(1)
	}
}

func ewmaAlpha(dt, tau float64) float64 {
	a := 1 - math.Exp(-dt/tau)
	return a
}

// Stats is a snapshot of the OS metrics the stats_pub plugin publishes
// (Table III).
type Stats struct {
	Load1, Load5, Load15                   float64
	IORead, IOWrite                        float64 // cumulative bytes
	ProcsRun, ProcsBlk, ProcsNew           float64
	MemUsed, MemFree, MemBuff, MemCach     float64 // bytes
	PagingIn, PagingOut                    float64
	DiskRead, DiskWrite                    float64 // cumulative bytes
	SystemInt, SystemCsw                   float64 // cumulative
	CPUUsr, CPUSys, CPUIdl, CPUWai, CPUStl float64 // percent
	NetRecv, NetSend                       float64 // cumulative bytes
	TempMB, TempCPU, TempNVMe              float64 // degC
}

// Stats returns the current OS statistics snapshot.
func (n *Node) Stats() Stats {
	n.observe()
	usr := 100 * n.act.CoreActivity
	sys := 1.5
	wai := 0.0
	if n.ioReadBps+n.ioWriteBps > 0 {
		wai = 2.0
	}
	idl := 100 - usr - sys - wai
	if idl < 0 {
		idl = 0
	}
	total := float64(n.machine.DDRBytes)
	buff := 0.02 * total
	cach := 0.10 * total
	free := total - n.memUsedBytes - buff - cach
	if free < 0 {
		free = 0
	}
	return Stats{
		Load1: n.load1, Load5: n.load5, Load15: n.load15,
		IORead: n.ioReadTotal, IOWrite: n.ioWriteTotal,
		ProcsRun: math.Round(n.load1), ProcsBlk: 0, ProcsNew: n.procsNewTotal,
		MemUsed: n.memUsedBytes, MemFree: free, MemBuff: buff, MemCach: cach,
		PagingIn: 0, PagingOut: 0,
		DiskRead: n.ioReadTotal, DiskWrite: n.ioWriteTotal,
		SystemInt: n.intsTotal, SystemCsw: n.cswTotal,
		CPUUsr: usr, CPUSys: sys, CPUIdl: idl, CPUWai: wai, CPUStl: 0,
		NetRecv: n.rxTotal, NetSend: n.txTotal,
		TempMB: n.tm.Temp(thermal.SensorMB), TempCPU: n.tm.Temp(thermal.SensorCPU),
		TempNVMe: n.tm.Temp(thermal.SensorNVMe),
	}
}

// Hwmon sysfs paths for the three temperature sensors (Table IV).
const (
	HwmonNVMePath = "/sys/class/hwmon/hwmon0/temp1_input"
	HwmonMBPath   = "/sys/class/hwmon/hwmon1/temp1_input"
	HwmonCPUPath  = "/sys/class/hwmon/hwmon1/temp2_input"
)

// ReadHwmon reads a temperature sensor through its sysfs path, returning
// millidegrees Celsius as the kernel hwmon interface does.
func (n *Node) ReadHwmon(path string) (int64, error) {
	n.observe()
	var s thermal.Sensor
	switch path {
	case HwmonNVMePath:
		s = thermal.SensorNVMe
	case HwmonMBPath:
		s = thermal.SensorMB
	case HwmonCPUPath:
		s = thermal.SensorCPU
	default:
		return 0, fmt.Errorf("node %s: no hwmon entry %q", n.hostname, path)
	}
	if n.state == StateOff {
		return 0, fmt.Errorf("node %s: hwmon read while powered off", n.hostname)
	}
	return int64(math.Round(n.tm.Temp(s) * 1000)), nil
}
