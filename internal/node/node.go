// Package node models one Monte Cimone compute node: a HiFive Unmatched
// board (SiFive Freedom U740, 16 GiB DDR4, 1 TB NVMe, 1 GbE) inside an E4
// RV007 blade slot, with its nine monitored power rails, three hwmon
// temperature sensors, per-hart performance counters and the operating
// system statistics collected by the ExaMon stats_pub plugin.
//
// The node follows the boot state machine of the paper's Fig. 4: power-on
// (R1, supply only), bootloader (R2, PLL and clock tree active, DDR
// training), then the operating system (R3), after which workloads modulate
// the rail powers. A thermal trip at 107 degC halts the node, as observed
// on node 7 during the first HPL runs.
package node

import (
	"fmt"
	"math"

	"montecimone/internal/perf"
	"montecimone/internal/power"
	"montecimone/internal/soc"
	"montecimone/internal/thermal"
)

// Boot timing relative to the power button (Fig. 4: power applied at ~4 s,
// PLL activation at ~10 s, OS idle from ~40 s).
const (
	// R1Duration is the supply-only region before the PLL activates.
	R1Duration = 6.0
	// R2Duration is the bootloader region, ending with a ramp as the OS
	// boots; RampDuration is the tail of R2 during which core power climbs
	// from the R2 floor to the OS idle floor.
	R2Duration   = 30.0
	RampDuration = 10.0
)

// State is the node's life-cycle state.
type State int

// Node states.
const (
	StateOff State = iota + 1
	StateBooting
	StateRunning
	StateHalted // thermal trip; requires power cycle
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StateHalted:
		return "halted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes one node.
type Config struct {
	// ID is the 1-based node number (1..8 on Monte Cimone).
	ID int
	// Slot is the 0-based blade slot for the thermal environment;
	// defaults to ID-1.
	Slot int
	// Machine is the SoC model; defaults to soc.FU740().
	Machine *soc.Machine
	// Enclosure is the chassis configuration shared by the cluster.
	Enclosure thermal.Enclosure
	// HPMPatch applies the authors' U-Boot patch enabling the
	// programmable performance counters.
	HPMPatch bool
}

// Node is a simulated compute node. Not safe for concurrent use; the
// cluster drives all nodes from the single simulation goroutine.
type Node struct {
	id       int
	hostname string
	machine  *soc.Machine
	pm       *power.Model
	tm       *thermal.Model
	pmu      *perf.PMU

	state     State
	poweredAt float64
	now       float64

	workload  string
	act       power.Activity
	freqScale float64 // DVFS scale in (0,1]; 1 = nominal 1.2 GHz

	// OS statistics state.
	load1, load5, load15      float64
	memUsedBytes              float64
	rxBps, txBps              float64
	ioReadBps, ioWriteBps     float64
	rxTotal, txTotal          float64
	ioReadTotal, ioWriteTotal float64
	intsTotal, cswTotal       float64
	procsNewTotal             float64
}

// New builds a node in the powered-off state.
func New(cfg Config) (*Node, error) {
	if cfg.ID <= 0 {
		return nil, fmt.Errorf("node: id must be positive, got %d", cfg.ID)
	}
	machine := cfg.Machine
	if machine == nil {
		machine = soc.FU740()
	}
	if err := machine.Validate(); err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	slot := cfg.Slot
	if slot == 0 && cfg.ID-1 < thermal.NumSlots {
		slot = cfg.ID - 1
	}
	tm, err := thermal.NewModel(cfg.Enclosure, slot)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	pmu, err := perf.NewPMU(machine.Cores, machine.ClockHz, 2 /* dual issue */, machine.CacheLineBytes, cfg.HPMPatch)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	return &Node{
		id:           cfg.ID,
		hostname:     fmt.Sprintf("%s%02d", machine.HostPrefix, cfg.ID),
		machine:      machine,
		pm:           power.NewModel(),
		tm:           tm,
		pmu:          pmu,
		state:        StateOff,
		freqScale:    1,
		memUsedBytes: 350e6, // resident OS baseline
	}, nil
}

// ID returns the 1-based node number.
func (n *Node) ID() int { return n.id }

// Hostname returns the node's hostname ("mc01" ... "mc08").
func (n *Node) Hostname() string { return n.hostname }

// Machine returns the SoC model.
func (n *Node) Machine() *soc.Machine { return n.machine }

// PMU exposes the performance-counter unit (read by the pmu_pub plugin).
func (n *Node) PMU() *perf.PMU { return n.pmu }

// Thermal exposes the thermal model (used for enclosure changes).
func (n *Node) Thermal() *thermal.Model { return n.tm }

// State returns the life-cycle state.
func (n *Node) State() State { return n.state }

// Workload returns the running workload name; empty when idle.
func (n *Node) Workload() string { return n.workload }

// PowerOn presses the power button at virtual time now. Each compute node
// has its own 250 W PSU and can be powered individually.
func (n *Node) PowerOn(now float64) error {
	if n.state != StateOff {
		return fmt.Errorf("node %s: power-on in state %s", n.hostname, n.state)
	}
	n.state = StateBooting
	n.poweredAt = now
	n.now = now
	return nil
}

// PowerOff cuts power, clearing any workload and thermal trip latch.
func (n *Node) PowerOff() {
	n.state = StateOff
	n.workload = ""
	n.act = power.Activity{}
	n.rxBps, n.txBps, n.ioReadBps, n.ioWriteBps = 0, 0, 0, 0
	n.tm.ClearTrip()
}

// Phase returns the power phase at the node's current time.
func (n *Node) Phase() power.Phase {
	switch n.state {
	case StateOff, StateHalted:
		return power.PhaseOff
	case StateBooting:
		elapsed := n.now - n.poweredAt
		if elapsed < R1Duration {
			return power.PhaseR1
		}
		return power.PhaseR2
	default:
		return power.PhaseRun
	}
}

// SetWorkload installs a workload's activity profile (only meaningful on a
// running node). memBytes is the workload's resident set.
func (n *Node) SetWorkload(name string, act power.Activity, memBytes float64) error {
	if n.state != StateRunning {
		return fmt.Errorf("node %s: cannot run %q in state %s", n.hostname, name, n.state)
	}
	n.workload = name
	n.act = act
	n.memUsedBytes = 350e6 + memBytes
	return nil
}

// ClearWorkload returns the node to idle.
func (n *Node) ClearWorkload() {
	n.workload = ""
	n.act = power.Activity{}
	n.memUsedBytes = 350e6
}

// SetNetRates sets the NIC receive/transmit rates in bytes/s (driven by the
// cluster network model).
func (n *Node) SetNetRates(rxBps, txBps float64) { n.rxBps, n.txBps = rxBps, txBps }

// SetIORates sets NVMe read/write rates in bytes/s.
func (n *Node) SetIORates(readBps, writeBps float64) { n.ioReadBps, n.ioWriteBps = readBps, writeBps }

// Activity returns the current workload activity profile.
func (n *Node) Activity() power.Activity { return n.act }

// MinFreqScale is the governor's lowest operating point (the U740's OPP
// table bottoms out around 40 % of nominal).
const MinFreqScale = 0.4

// SetFrequencyScale sets the DVFS operating point in [MinFreqScale, 1].
// Values outside the range clamp. The scale reduces the dynamic share of
// every rail and the instruction/cycle rates proportionally.
func (n *Node) SetFrequencyScale(s float64) {
	if s < MinFreqScale {
		s = MinFreqScale
	}
	if s > 1 {
		s = 1
	}
	n.freqScale = s
}

// FrequencyScale returns the current DVFS operating point.
func (n *Node) FrequencyScale() float64 { return n.freqScale }

// RailMilliwatts returns the instantaneous power of one rail, including
// the boot ramp from the R2 floor towards the OS idle floor during the
// last RampDuration seconds of the bootloader region, and the DVFS
// operating point while the OS runs.
func (n *Node) RailMilliwatts(r power.Rail) float64 {
	phase := n.Phase()
	if phase == power.PhaseRun {
		return n.pm.RailMilliwattsScaled(r, phase, n.act, n.freqScale)
	}
	base := n.pm.RailMilliwatts(r, phase, n.act)
	if phase != power.PhaseR2 {
		return base
	}
	elapsed := n.now - n.poweredAt
	rampStart := R1Duration + R2Duration - RampDuration
	if elapsed <= rampStart {
		return base
	}
	frac := (elapsed - rampStart) / RampDuration
	idle := n.pm.RailMilliwatts(r, power.PhaseRun, power.Activity{})
	return base + frac*(idle-base)
}

// TotalMilliwatts sums all nine rails.
func (n *Node) TotalMilliwatts() float64 {
	total := 0.0
	for _, r := range power.Rails {
		total += n.RailMilliwatts(r)
	}
	return total
}

// Temperature returns a sensor reading in degC.
func (n *Node) Temperature(s thermal.Sensor) float64 { return n.tm.Temp(s) }

// nvmeWatts models NVMe device power from IO activity.
func (n *Node) nvmeWatts() float64 {
	if n.state == StateOff || n.state == StateHalted {
		return 0
	}
	util := (n.ioReadBps + n.ioWriteBps) / 2.0e9 // ~2 GB/s device
	if util > 1 {
		util = 1
	}
	return 0.8 + 3.2*util
}

// Step advances the node to virtual time now (dt seconds after the last
// step). It updates boot progression, thermal state, performance counters
// and OS statistics, and halts the node on a thermal trip.
func (n *Node) Step(now float64) {
	dt := now - n.now
	if dt < 0 {
		return
	}
	n.now = now
	if dt == 0 {
		return
	}
	// Boot progression.
	if n.state == StateBooting && now-n.poweredAt >= R1Duration+R2Duration {
		n.state = StateRunning
	}

	// Thermal: the SoC dissipates the sum of its rails.
	socW := n.TotalMilliwatts() / 1000
	n.tm.Step(dt, socW, n.nvmeWatts())
	if n.tm.Tripped() && n.state != StateHalted {
		// Thermal hazard: the node stops executing (paper, Fig. 6).
		n.state = StateHalted
		n.workload = ""
		n.act = power.Activity{}
	}

	if n.state != StateRunning {
		return
	}

	// Performance counters.
	n.pmu.Advance(dt, perf.Load{
		CoreActivity:        n.act.CoreActivity,
		DDRReadBytesPerSec:  n.act.DDRReadGBs * 1e9,
		DDRWriteBytesPerSec: n.act.DDRWriteGBs * 1e9,
		ClockScale:          n.freqScale,
	})

	// OS statistics.
	runnable := float64(n.machine.Cores) * n.act.CoreActivity
	if n.workload != "" && runnable < 1 {
		runnable = 1 // at least the benchmark process
	}
	n.load1 += (runnable - n.load1) * ewmaAlpha(dt, 60)
	n.load5 += (runnable - n.load5) * ewmaAlpha(dt, 300)
	n.load15 += (runnable - n.load15) * ewmaAlpha(dt, 900)
	n.rxTotal += n.rxBps * dt
	n.txTotal += n.txBps * dt
	n.ioReadTotal += n.ioReadBps * dt
	n.ioWriteTotal += n.ioWriteBps * dt
	// Interrupts: timer ticks (250 Hz/core) plus NIC interrupts; context
	// switches track interrupts plus scheduler activity.
	n.intsTotal += dt * (250*float64(n.machine.Cores) + n.rxBps/8e3)
	n.cswTotal += dt * (400 + 2000*n.act.CoreActivity)
	n.procsNewTotal += dt * 2
}

func ewmaAlpha(dt, tau float64) float64 {
	a := 1 - math.Exp(-dt/tau)
	return a
}

// Stats is a snapshot of the OS metrics the stats_pub plugin publishes
// (Table III).
type Stats struct {
	Load1, Load5, Load15                   float64
	IORead, IOWrite                        float64 // cumulative bytes
	ProcsRun, ProcsBlk, ProcsNew           float64
	MemUsed, MemFree, MemBuff, MemCach     float64 // bytes
	PagingIn, PagingOut                    float64
	DiskRead, DiskWrite                    float64 // cumulative bytes
	SystemInt, SystemCsw                   float64 // cumulative
	CPUUsr, CPUSys, CPUIdl, CPUWai, CPUStl float64 // percent
	NetRecv, NetSend                       float64 // cumulative bytes
	TempMB, TempCPU, TempNVMe              float64 // degC
}

// Stats returns the current OS statistics snapshot.
func (n *Node) Stats() Stats {
	usr := 100 * n.act.CoreActivity
	sys := 1.5
	wai := 0.0
	if n.ioReadBps+n.ioWriteBps > 0 {
		wai = 2.0
	}
	idl := 100 - usr - sys - wai
	if idl < 0 {
		idl = 0
	}
	total := float64(n.machine.DDRBytes)
	buff := 0.02 * total
	cach := 0.10 * total
	free := total - n.memUsedBytes - buff - cach
	if free < 0 {
		free = 0
	}
	return Stats{
		Load1: n.load1, Load5: n.load5, Load15: n.load15,
		IORead: n.ioReadTotal, IOWrite: n.ioWriteTotal,
		ProcsRun: math.Round(n.load1), ProcsBlk: 0, ProcsNew: n.procsNewTotal,
		MemUsed: n.memUsedBytes, MemFree: free, MemBuff: buff, MemCach: cach,
		PagingIn: 0, PagingOut: 0,
		DiskRead: n.ioReadTotal, DiskWrite: n.ioWriteTotal,
		SystemInt: n.intsTotal, SystemCsw: n.cswTotal,
		CPUUsr: usr, CPUSys: sys, CPUIdl: idl, CPUWai: wai, CPUStl: 0,
		NetRecv: n.rxTotal, NetSend: n.txTotal,
		TempMB: n.tm.Temp(thermal.SensorMB), TempCPU: n.tm.Temp(thermal.SensorCPU),
		TempNVMe: n.tm.Temp(thermal.SensorNVMe),
	}
}

// Hwmon sysfs paths for the three temperature sensors (Table IV).
const (
	HwmonNVMePath = "/sys/class/hwmon/hwmon0/temp1_input"
	HwmonMBPath   = "/sys/class/hwmon/hwmon1/temp1_input"
	HwmonCPUPath  = "/sys/class/hwmon/hwmon1/temp2_input"
)

// ReadHwmon reads a temperature sensor through its sysfs path, returning
// millidegrees Celsius as the kernel hwmon interface does.
func (n *Node) ReadHwmon(path string) (int64, error) {
	var s thermal.Sensor
	switch path {
	case HwmonNVMePath:
		s = thermal.SensorNVMe
	case HwmonMBPath:
		s = thermal.SensorMB
	case HwmonCPUPath:
		s = thermal.SensorCPU
	default:
		return 0, fmt.Errorf("node %s: no hwmon entry %q", n.hostname, path)
	}
	if n.state == StateOff {
		return 0, fmt.Errorf("node %s: hwmon read while powered off", n.hostname)
	}
	return int64(math.Round(n.tm.Temp(s) * 1000)), nil
}
