package node

import (
	"math"
	"testing"

	"montecimone/internal/power"
	"montecimone/internal/thermal"
)

func newTestNode(t *testing.T, id int) *Node {
	t.Helper()
	n, err := New(Config{ID: id, Enclosure: thermal.DefaultEnclosure(), HPMPatch: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// bootNode powers on at t=0 and steps until running.
func bootNode(t *testing.T, n *Node) float64 {
	t.Helper()
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for n.State() != StateRunning {
		now += 0.5
		n.Step(now)
		if now > 120 {
			t.Fatal("node did not finish booting")
		}
	}
	return now
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: 0}); err == nil {
		t.Error("zero id accepted")
	}
}

func TestHostname(t *testing.T) {
	n := newTestNode(t, 3)
	if n.Hostname() != "mc03" {
		t.Errorf("hostname = %q, want mc03", n.Hostname())
	}
}

func TestBootSequencePhases(t *testing.T) {
	n := newTestNode(t, 1)
	if n.Phase() != power.PhaseOff {
		t.Fatalf("initial phase = %v, want off", n.Phase())
	}
	if err := n.PowerOn(10); err != nil {
		t.Fatal(err)
	}
	n.Step(12)
	if n.Phase() != power.PhaseR1 {
		t.Errorf("at +2 s phase = %v, want R1", n.Phase())
	}
	n.Step(10 + R1Duration + 1)
	if n.Phase() != power.PhaseR2 {
		t.Errorf("after R1 phase = %v, want R2", n.Phase())
	}
	n.Step(10 + R1Duration + R2Duration + 0.5)
	if n.Phase() != power.PhaseRun {
		t.Errorf("after boot phase = %v, want R3/run", n.Phase())
	}
	if n.State() != StateRunning {
		t.Errorf("state = %v, want running", n.State())
	}
}

func TestDoublePowerOnRejected(t *testing.T) {
	n := newTestNode(t, 1)
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if err := n.PowerOn(1); err == nil {
		t.Error("double power-on accepted")
	}
}

func TestBootPowerLevels(t *testing.T) {
	// Fig. 4 / Table VI: R1 total 1385 mW, R2 total 4024 mW, idle 4810 mW.
	n := newTestNode(t, 1)
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	n.Step(2)
	if got := n.TotalMilliwatts(); got != 1385 {
		t.Errorf("R1 total = %v, want 1385", got)
	}
	n.Step(R1Duration + 2)
	if got := n.TotalMilliwatts(); got != 4024 {
		t.Errorf("R2 total = %v, want 4024", got)
	}
	// During the OS-boot ramp power climbs towards idle.
	rampMid := R1Duration + R2Duration - RampDuration/2
	n.Step(rampMid)
	mid := n.TotalMilliwatts()
	if mid <= 4024 || mid >= 4810 {
		t.Errorf("ramp power = %v, want between 4024 and 4810", mid)
	}
	n.Step(R1Duration + R2Duration + 1)
	if got := n.TotalMilliwatts(); got != 4810 {
		t.Errorf("idle total = %v, want 4810", got)
	}
}

func TestWorkloadPower(t *testing.T) {
	n := newTestNode(t, 1)
	bootNode(t, n)
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	got := n.TotalMilliwatts()
	if math.Abs(got-5935) > 30 {
		t.Errorf("HPL total = %v, want ~5935", got)
	}
	n.ClearWorkload()
	if got := n.TotalMilliwatts(); got != 4810 {
		t.Errorf("after clear = %v, want 4810", got)
	}
}

func TestWorkloadRequiresRunning(t *testing.T) {
	n := newTestNode(t, 1)
	if err := n.SetWorkload("hpl", power.ActivityHPL, 0); err == nil {
		t.Error("workload accepted on powered-off node")
	}
}

func TestCountersAdvanceOnlyWhenRunning(t *testing.T) {
	n := newTestNode(t, 1)
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	n.Step(3)                         // still in R1
	cycles, err := n.PMU().Read(0, 2) // EventCycle
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 {
		t.Errorf("cycles advanced during boot: %d", cycles)
	}
	bootTime := 0.0
	for n.State() != StateRunning {
		bootTime += 1
		n.Step(3 + bootTime)
	}
	n.Step(3 + bootTime + 10)
	cycles, _ = n.PMU().Read(0, 2)
	if cycles == 0 {
		t.Error("cycles did not advance while running")
	}
}

func TestNode7ThermalHalt(t *testing.T) {
	// Node 7 under sustained HPL with the lid on must trip and halt.
	n := newTestNode(t, 7)
	bootNode(t, n)
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	now := 50.0
	for i := 0; i < 7200; i++ {
		now += 0.5
		n.Step(now)
		if n.State() == StateHalted {
			break
		}
	}
	if n.State() != StateHalted {
		t.Fatalf("node 7 did not halt; temp=%.1f", n.Temperature(thermal.SensorCPU))
	}
	if n.Workload() != "" {
		t.Error("halted node still reports a workload")
	}
	if n.Phase() != power.PhaseOff {
		t.Errorf("halted node phase = %v, want off", n.Phase())
	}
	// Power cycle recovers it.
	n.PowerOff()
	if err := n.PowerOn(now + 100); err != nil {
		t.Errorf("power-on after halt: %v", err)
	}
}

func TestStableNodeDoesNotHalt(t *testing.T) {
	n := newTestNode(t, 3) // centre blade, hot but stable at ~71 degC
	bootNode(t, n)
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	now := 50.0
	for i := 0; i < 7200; i++ {
		now += 0.5
		n.Step(now)
	}
	if n.State() != StateRunning {
		t.Fatalf("node 3 state = %v, want running", n.State())
	}
	temp := n.Temperature(thermal.SensorCPU)
	if math.Abs(temp-71) > 3 {
		t.Errorf("node 3 steady HPL temp = %.1f, want ~71", temp)
	}
}

func TestStatsReflectWorkload(t *testing.T) {
	n := newTestNode(t, 1)
	bootNode(t, n)
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	n.SetNetRates(10e6, 5e6)
	n.SetIORates(1e6, 1e6)
	now := 40.0
	for i := 0; i < 600; i++ {
		now += 0.5
		n.Step(now)
	}
	st := n.Stats()
	if st.CPUUsr != 46.5 {
		t.Errorf("cpu usr = %v, want 46.5", st.CPUUsr)
	}
	if st.Load1 < 1 || st.Load1 > 4 {
		t.Errorf("load1 = %v, want within (1,4)", st.Load1)
	}
	if st.NetRecv <= 0 || st.NetSend <= 0 {
		t.Error("net counters did not accumulate")
	}
	if st.MemUsed < 13e9 {
		t.Errorf("mem used = %v, want >= workload set", st.MemUsed)
	}
	if st.MemFree < 0 {
		t.Error("negative free memory")
	}
	if st.TempCPU <= st.TempMB {
		t.Error("cpu sensor should exceed mb sensor under load")
	}
}

func TestHwmonPaths(t *testing.T) {
	// Table IV: the three sysfs files map to the three sensors.
	n := newTestNode(t, 1)
	bootNode(t, n)
	for _, path := range []string{HwmonNVMePath, HwmonMBPath, HwmonCPUPath} {
		v, err := n.ReadHwmon(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if v < 20000 || v > 110000 {
			t.Errorf("%s = %d millidegC out of plausible range", path, v)
		}
	}
	if _, err := n.ReadHwmon("/sys/class/hwmon/hwmon2/temp1_input"); err == nil {
		t.Error("unknown hwmon path accepted")
	}
}

func TestHwmonOffNode(t *testing.T) {
	n := newTestNode(t, 1)
	if _, err := n.ReadHwmon(HwmonCPUPath); err == nil {
		t.Error("hwmon read on powered-off node accepted")
	}
}

func TestStepBackwardsIgnored(t *testing.T) {
	n := newTestNode(t, 1)
	bootNode(t, n)
	before := n.Stats().SystemInt
	n.Step(1) // far in the past relative to boot completion
	if n.Stats().SystemInt != before {
		t.Error("backwards step mutated state")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateOff: "off", StateBooting: "booting",
		StateRunning: "running", StateHalted: "halted",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state string")
	}
}
