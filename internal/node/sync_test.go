package node

import (
	"math"
	"testing"

	"montecimone/internal/power"
	"montecimone/internal/thermal"
)

// TestSyncToMatchesStepGrid pins the demand-driven contract: while the
// node is thermally active, SyncTo integrates on exactly the base-step
// Euler grid, so a lazy catch-up reproduces the lock-step trajectory
// bit for bit.
func TestSyncToMatchesStepGrid(t *testing.T) {
	mk := func() *Node {
		n, err := New(Config{ID: 7, Enclosure: thermal.DefaultEnclosure(), HPMPatch: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.PowerOn(0); err != nil {
			t.Fatal(err)
		}
		return n
	}
	stepped, lazy := mk(), mk()

	// Lock-step: one Euler step per 0.1 s period, accumulated like the
	// cluster ticker accumulates its schedule.
	now := 0.0
	for now < 50 {
		now += 0.1
		stepped.Step(now)
	}
	// Demand-driven: one catch-up sync over the whole window.
	lazy.SyncTo(now)

	for _, s := range thermal.Sensors {
		if a, b := stepped.Temperature(s), lazy.Temperature(s); a != b {
			t.Errorf("%v: stepped %v != lazy %v", s, a, b)
		}
	}
	if a, b := stepped.Stats().SystemInt, lazy.Stats().SystemInt; a != b {
		t.Errorf("SystemInt: stepped %v != lazy %v", a, b)
	}
	if stepped.State() != StateRunning || lazy.State() != StateRunning {
		t.Fatalf("states = %v / %v, want running", stepped.State(), lazy.State())
	}
	if stepped.ModelSteps() != lazy.ModelSteps() {
		t.Errorf("active-phase model steps differ: %d vs %d", stepped.ModelSteps(), lazy.ModelSteps())
	}
}

// TestQuiescentRelaxSkipsSteps: once a node settles, a long sync costs no
// Euler steps and lands within the quiescence tolerance of the stepped
// trajectory.
func TestQuiescentRelaxSkipsSteps(t *testing.T) {
	mk := func() *Node {
		n, err := New(Config{ID: 1, Enclosure: thermal.Enclosure{AmbientC: 25, LidOn: false}})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.PowerOn(0); err != nil {
			t.Fatal(err)
		}
		return n
	}
	stepped, lazy := mk(), mk()
	now := 0.0
	for now < 3000 {
		now += 0.1
		stepped.Step(now)
	}
	// First catch-up covers the active relaxation on the grid; by 3000 s
	// an idle node is quiescent.
	lazy.SyncTo(3000)
	before := lazy.ModelSteps()
	lazy.SyncTo(10000)
	if got := lazy.ModelSteps() - before; got != 0 {
		t.Errorf("quiescent sync used %d Euler steps, want 0", got)
	}
	for now < 10000 {
		now += 0.1
		stepped.Step(now)
	}
	for _, s := range thermal.Sensors {
		if d := math.Abs(stepped.Temperature(s) - lazy.Temperature(s)); d > 2e-3 {
			t.Errorf("%v diverged by %v degC after quiescent relax", s, d)
		}
	}
	// Counters advance exactly through the relax path too.
	if a, b := stepped.Stats().SystemInt, lazy.Stats().SystemInt; math.Abs(a-b) > 1e-6*a {
		t.Errorf("SystemInt diverged: %v vs %v", a, b)
	}
}

// TestNextDeadlineContract: booting nodes report their boot completion,
// runaway nodes report finite refinement deadlines down to the base step,
// cool stable nodes report none.
func TestNextDeadlineContract(t *testing.T) {
	n, err := New(Config{ID: 7, Enclosure: thermal.DefaultEnclosure()})
	if err != nil {
		t.Fatal(err)
	}
	if d := n.NextDeadline(); !math.IsInf(d, 1) {
		t.Errorf("off node deadline = %v, want +Inf", d)
	}
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if d := n.NextDeadline(); d != n.BootDeadline() {
		t.Errorf("booting deadline = %v, want %v", d, n.BootDeadline())
	}
	n.SyncTo(n.BootDeadline())
	if n.State() != StateRunning {
		t.Fatalf("state = %v at boot deadline", n.State())
	}
	// Idle on the hazard slot is stable and cool: no deadline.
	if d := n.NextDeadline(); !math.IsInf(d, 1) {
		t.Errorf("idle deadline = %v, want +Inf", d)
	}
	// HPL on the hazard slot runs away: finite deadline, shrinking to the
	// base step as the junction approaches the trip band.
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	d := n.NextDeadline()
	if math.IsInf(d, 1) || d <= n.BootDeadline() {
		t.Fatalf("runaway deadline = %v, want finite future time", d)
	}
	for i := 0; i < 100000 && n.State() == StateRunning; i++ {
		at := n.NextDeadline()
		if math.IsInf(at, 1) {
			t.Fatal("runaway node reported no deadline before tripping")
		}
		n.SyncTo(at)
	}
	if n.State() != StateHalted {
		t.Fatal("deadline-driven integration missed the trip")
	}
	if n.HaltedAt() <= 0 {
		t.Errorf("HaltedAt = %v", n.HaltedAt())
	}
}

// TestTransitionCallbacks: boot completion and halt are pushed with the
// substep times they were integrated at.
func TestTransitionCallbacks(t *testing.T) {
	n, err := New(Config{ID: 7, Enclosure: thermal.DefaultEnclosure()})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Transition
	var times []float64
	n.OnTransition(func(kind Transition, at float64) {
		kinds = append(kinds, kind)
		times = append(times, at)
	})
	inputChanges := 0
	n.OnInputChange(func() { inputChanges++ })
	if err := n.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	if inputChanges != 1 {
		t.Errorf("power-on input changes = %d, want 1", inputChanges)
	}
	n.SyncTo(40)
	if len(kinds) != 1 || kinds[0] != TransitionBootComplete {
		t.Fatalf("transitions after boot = %v", kinds)
	}
	if times[0] < R1Duration+R2Duration || times[0] > R1Duration+R2Duration+0.1+1e-9 {
		t.Errorf("boot transition at %v, want ~%v", times[0], R1Duration+R2Duration)
	}
	if err := n.SetWorkload("hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	n.SyncTo(7200)
	if len(kinds) != 2 || kinds[1] != TransitionHalt {
		t.Fatalf("transitions after runaway = %v", kinds)
	}
	if times[1] != n.HaltedAt() {
		t.Errorf("halt transition at %v, HaltedAt %v", times[1], n.HaltedAt())
	}
	// Same-value DVFS writes are not input changes.
	before := inputChanges
	n.SetFrequencyScale(n.FrequencyScale())
	if inputChanges != before {
		t.Error("same-value SetFrequencyScale reported an input change")
	}
}
