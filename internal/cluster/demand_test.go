package cluster

import (
	"math"
	"testing"

	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

// runHazardCampaign boots a full cluster, runs HPL everywhere and returns
// the halt bookkeeping: the hostname, the engine time the halt callback
// fired at, and the node's own integrated trip time.
func runHazardCampaign(t *testing.T, lockStep bool) (host string, callbackAt, haltedAt, mc03Temp float64) {
	t.Helper()
	e := sim.NewEngine()
	c, err := New(e, Config{LockStep: lockStep})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	callbackAt = -1
	c.OnNodeHalt(func(h string) {
		if host == "" {
			host = h
			callbackAt = e.Now()
		}
	})
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 3600); err != nil {
		t.Fatal(err)
	}
	nd, _ := c.NodeByHostname("mc07")
	nd3, _ := c.NodeByHostname("mc03")
	return host, callbackAt, nd.HaltedAt(), nd3.Temperature(thermal.SensorCPU)
}

// TestDemandDrivenMatchesLockStep is the ablation equivalence contract:
// the demand-driven integrator must reproduce the lock-step run's thermal
// story — same tripped node, same halt time on the integration grid, same
// steady temperatures — while doing far less work.
func TestDemandDrivenMatchesLockStep(t *testing.T) {
	lockHost, lockCb, lockHalt, lockTemp := runHazardCampaign(t, true)
	lazyHost, lazyCb, lazyHalt, lazyTemp := runHazardCampaign(t, false)
	if lockHost != "mc07" || lazyHost != "mc07" {
		t.Fatalf("tripped hosts = %q / %q, want mc07", lockHost, lazyHost)
	}
	if d := math.Abs(lockHalt - lazyHalt); d > 1e-6 {
		t.Errorf("integrated trip times differ by %v s (lock %v, demand %v)", d, lockHalt, lazyHalt)
	}
	// The halt callback must fire at the trip instant in both modes: the
	// lock-step ticker discovers it on the crossing tick; the
	// demand-driven watchdog refines to the base step inside the hot
	// band for exactly this reason.
	if d := math.Abs(lockCb - lazyCb); d > 1e-6 {
		t.Errorf("halt callbacks fired %v s apart (lock %v, demand %v)", d, lockCb, lazyCb)
	}
	if d := math.Abs(lockCb - lockHalt); d > 1e-6 {
		t.Errorf("lock-step callback at %v but trip integrated at %v", lockCb, lockHalt)
	}
	if d := math.Abs(lockTemp - lazyTemp); d > 0.01 {
		t.Errorf("mc03 steady temps differ by %v degC (lock %v, demand %v)", d, lockTemp, lazyTemp)
	}
}

// TestDemandDrivenStepReduction asserts the headline physics saving: on
// an idle partition observed at the telemetry rate (2 Hz), the
// demand-driven integrator executes at least 5x fewer model steps than
// the lock-step ablation over a settled window. (In practice the gap is
// orders of magnitude; 5x is the acceptance floor.)
func TestDemandDrivenStepReduction(t *testing.T) {
	window := func(lockStep bool) uint64 {
		e := sim.NewEngine()
		c, err := New(e, Config{Nodes: 16, SyntheticSlots: true, LockStep: lockStep})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		if err := c.BootAndSettle(1); err != nil {
			t.Fatal(err)
		}
		// 2 Hz per-node observation, the pmu_pub sampling pattern.
		if _, err := sim.NewTicker(e, e.Now()+0.5, 0.5, "obs", func(now float64) {
			for i := 0; i < c.Size(); i++ {
				c.Node(i).SyncTo(now)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.RunUntil(e.Now() + 1600); err != nil { // settle past the thermal taus
			t.Fatal(err)
		}
		before := c.ModelSteps()
		if err := e.RunUntil(e.Now() + 300); err != nil {
			t.Fatal(err)
		}
		return c.ModelSteps() - before
	}
	lock := window(true)
	lazy := window(false)
	if lazy == 0 {
		lazy = 1
	}
	ratio := float64(lock) / float64(lazy)
	t.Logf("window steps: lock-step %d, demand-driven %d (%.0fx)", lock, lazy, ratio)
	if ratio < 5 {
		t.Errorf("demand-driven executed only %.1fx fewer steps, want >= 5x", ratio)
	}
}

// TestBootCompletionNotification: each node pushes its boot completion at
// its own deadline, and BootAndSettle derives its wait from those
// deadlines instead of hard-coded constants — including with a custom
// integration period in both modes and with zero settle margin.
func TestBootCompletionNotification(t *testing.T) {
	for _, lockStep := range []bool{false, true} {
		for _, period := range []float64{0.1, 0.7} {
			e := sim.NewEngine()
			c, err := New(e, Config{Nodes: 4, StepPeriod: period, LockStep: lockStep})
			if err != nil {
				t.Fatal(err)
			}
			booted := map[string]float64{}
			c.OnNodeBoot(func(h string) { booted[h] = e.Now() })
			if err := c.BootAndSettle(0); err != nil {
				t.Fatalf("lockStep=%v period=%v: %v", lockStep, period, err)
			}
			if len(booted) != 4 {
				t.Fatalf("lockStep=%v period=%v: %d boot notifications, want 4", lockStep, period, len(booted))
			}
			for h, at := range booted {
				min := node.R1Duration + node.R2Duration - 1e-6
				if at < min || at > min+period+1e-6 {
					t.Errorf("lockStep=%v period=%v: %s booted at %v, want within one period of %v",
						lockStep, period, h, at, min)
				}
			}
			c.Stop()
		}
	}
}

// TestStopCancelsWatchdogs: Stop must leave no live integration events in
// either mode.
func TestStopCancelsWatchdogs(t *testing.T) {
	e := sim.NewEngine()
	c, err := New(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	// A runaway workload keeps watchdogs armed.
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if got := e.Pending(); got != 0 {
		t.Errorf("%d live events after Stop", got)
	}
}
