package cluster

import (
	"math"
	"testing"

	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/thermal"
)

func newCluster(t *testing.T, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	c, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, c
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, Config{Nodes: 99}); err == nil {
		t.Error("oversized cluster accepted")
	}
	if _, err := New(e, Config{StepPeriod: -1}); err == nil {
		t.Error("negative step period accepted")
	}
}

func TestDefaultTopology(t *testing.T) {
	_, c := newCluster(t, Config{})
	if c.Size() != 8 {
		t.Fatalf("size = %d, want 8", c.Size())
	}
	hosts := c.Hostnames()
	if hosts[0] != "mc01" || hosts[7] != "mc08" {
		t.Errorf("hostnames = %v", hosts)
	}
	blades := c.Blades()
	if len(blades) != 4 {
		t.Fatalf("blades = %d, want 4", len(blades))
	}
	for i, blade := range blades {
		if len(blade) != 2 {
			t.Errorf("blade %d holds %d nodes, want 2", i, len(blade))
		}
	}
	if c.NFS().Clients() != 8 {
		t.Errorf("NFS clients = %d, want 8", c.NFS().Clients())
	}
	if c.Fabric().Nodes() != 8 {
		t.Errorf("fabric nodes = %d", c.Fabric().Nodes())
	}
}

func TestLookups(t *testing.T) {
	_, c := newCluster(t, Config{})
	nd, err := c.NodeByHostname("mc05")
	if err != nil || nd.ID() != 5 {
		t.Errorf("NodeByHostname: %v, %v", nd, err)
	}
	if _, err := c.NodeByHostname("zz99"); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := c.NFSMount("mc03"); err != nil {
		t.Errorf("NFSMount: %v", err)
	}
	if _, err := c.NFSMount("zz"); err == nil {
		t.Error("unknown mount accepted")
	}
	if _, err := c.NVMe("mc03"); err != nil {
		t.Errorf("NVMe: %v", err)
	}
	if _, err := c.NVMe("zz"); err == nil {
		t.Error("unknown NVMe accepted")
	}
}

func TestBootAndSettle(t *testing.T) {
	e, c := newCluster(t, Config{})
	if err := c.BootAndSettle(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		if c.Node(i).State() != node.StateRunning {
			t.Errorf("node %d state %s", i+1, c.Node(i).State())
		}
	}
	// Idle power per node after boot.
	if got := c.Node(0).TotalMilliwatts(); got != 4810 {
		t.Errorf("idle node power = %v, want 4810", got)
	}
	if e.Now() < node.R1Duration+node.R2Duration {
		t.Errorf("engine time %v did not cover boot", e.Now())
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	_, c := newCluster(t, Config{})
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	hosts := c.Hostnames()[:4]
	if err := c.RunWorkloadOn(hosts, "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		nd, _ := c.NodeByHostname(h)
		if nd.Workload() != "hpl" {
			t.Errorf("%s workload = %q", h, nd.Workload())
		}
	}
	nd, _ := c.NodeByHostname("mc05")
	if nd.Workload() != "" {
		t.Error("unallocated node got a workload")
	}
	c.ClearWorkloadOn(hosts)
	for _, h := range hosts {
		nd, _ := c.NodeByHostname(h)
		if nd.Workload() != "" {
			t.Errorf("%s workload not cleared", h)
		}
	}
	if err := c.RunWorkloadOn([]string{"bogus"}, "x", power.ActivityIdle, 0); err == nil {
		t.Error("workload on unknown host accepted")
	}
}

func TestNode7HaltsUnderFullMachineHPL(t *testing.T) {
	// Fig. 6 scenario: full-machine HPL with the lid on halts node 7.
	e, c := newCluster(t, Config{})
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	var halted []string
	c.OnNodeHalt(func(h string) { halted = append(halted, h) })
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 3600); err != nil {
		t.Fatal(err)
	}
	if len(halted) != 1 || halted[0] != "mc07" {
		t.Fatalf("halted = %v, want [mc07]", halted)
	}
	nd, _ := c.NodeByHostname("mc07")
	if nd.State() != node.StateHalted {
		t.Errorf("mc07 state = %s", nd.State())
	}
	// After the trip the node powers down and cools back towards the slot
	// air temperature.
	if got := nd.Temperature(thermal.SensorCPU); got >= thermal.TripTempC {
		t.Errorf("mc07 temp = %v, want cooling below %v after shutdown", got, thermal.TripTempC)
	}
	// Other centre nodes hot but stable near 71 degC.
	nd3, _ := c.NodeByHostname("mc03")
	if temp := nd3.Temperature(thermal.SensorCPU); math.Abs(temp-71) > 3 {
		t.Errorf("mc03 temp = %.1f, want ~71", temp)
	}
}

func TestAirflowMitigationRecoversNode7(t *testing.T) {
	e, c := newCluster(t, Config{})
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 3600); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyAirflowMitigation(); err != nil {
		t.Fatal(err)
	}
	// Node 7 reboots; wait for boot plus thermal relaxation.
	if err := e.RunUntil(e.Now() + 600); err != nil {
		t.Fatal(err)
	}
	nd, _ := c.NodeByHostname("mc07")
	if nd.State() != node.StateRunning {
		t.Fatalf("mc07 state = %s after mitigation", nd.State())
	}
	// Re-run HPL everywhere: the hottest node now stays near 39 degC.
	if err := c.RunWorkloadOn(c.Hostnames(), "hpl", power.ActivityHPL, 13e9); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(e.Now() + 1800); err != nil {
		t.Fatal(err)
	}
	hottest := 0.0
	for i := 0; i < c.Size(); i++ {
		if temp := c.Node(i).Temperature(thermal.SensorCPU); temp > hottest {
			hottest = temp
		}
	}
	if math.Abs(hottest-39) > 2 {
		t.Errorf("hottest post-mitigation = %.1f, want ~39", hottest)
	}
}

func TestPlacement(t *testing.T) {
	_, c := newCluster(t, Config{})
	p, err := c.Placement(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	if len(p) != len(want) {
		t.Fatalf("placement = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("placement = %v, want %v", p, want)
		}
	}
	if _, err := c.Placement(0, 4); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := c.Placement(9, 4); err == nil {
		t.Error("too many nodes accepted")
	}
	if _, err := c.Placement(2, 0); err == nil {
		t.Error("zero ranks per node accepted")
	}
}

func TestStopTicker(t *testing.T) {
	e, c := newCluster(t, Config{})
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	before := e.Pending()
	if err := e.RunUntil(e.Now() + 10); err != nil {
		t.Fatal(err)
	}
	if e.Pending() > before {
		t.Error("ticker still scheduling after Stop")
	}
	// Idempotent.
	c.Stop()
}

func TestSmallCluster(t *testing.T) {
	_, c := newCluster(t, Config{Nodes: 3})
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	blades := c.Blades()
	if len(blades) != 2 || len(blades[1]) != 1 {
		t.Errorf("blades = %v", blades)
	}
}

func TestSyntheticSlots(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(e, Config{Nodes: 12}); err == nil {
		t.Error("12 nodes accepted without SyntheticSlots")
	}
	_, c := newCluster(t, Config{Nodes: 12, SyntheticSlots: true})
	if c.Size() != 12 {
		t.Fatalf("size = %d, want 12", c.Size())
	}
	hosts := c.Hostnames()
	if hosts[8] != "mc09" || hosts[11] != "mc12" {
		t.Errorf("synthetic hostnames = %v", hosts[8:])
	}
	if c.Fabric().Nodes() != 12 {
		t.Errorf("fabric nodes = %d, want 12", c.Fabric().Nodes())
	}
	// Synthetic nodes boot like physical ones (slot envs wrap modulo 8).
	if err := c.BootAndSettle(1); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	for i := 0; i < c.Size(); i++ {
		if c.Node(i).State() != node.StateRunning {
			t.Errorf("node %d state %s after boot", i+1, c.Node(i).State())
		}
	}
}
