// Package cluster assembles the Monte Cimone machine: eight compute nodes
// in four E4 RV007 blades (two HiFive Unmatched boards per 1U case, one
// 250 W PSU each so every node powers on individually), a login node and a
// master node running the job scheduler, the NFS export and the system
// management software, all connected through the 1 Gb Ethernet fabric.
package cluster

import (
	"fmt"
	"math"

	"montecimone/internal/netsim"
	"montecimone/internal/node"
	"montecimone/internal/power"
	"montecimone/internal/sim"
	"montecimone/internal/soc"
	"montecimone/internal/storage"
	"montecimone/internal/thermal"
)

// DefaultNodes is the paper's compute-node count.
const DefaultNodes = 8

// NodesPerBlade is the RV007 dual-board blade capacity.
const NodesPerBlade = 2

// Config describes a cluster build.
type Config struct {
	// Nodes is the compute-node count; defaults to DefaultNodes.
	Nodes int
	// Machine is the per-node SoC; defaults to soc.FU740().
	Machine *soc.Machine
	// Enclosure is the initial chassis configuration; defaults to the
	// paper's original lid-on build.
	Enclosure *thermal.Enclosure
	// AmbientC overrides the machine-room inlet temperature of the
	// default enclosure (ignored when Enclosure is set explicitly). 0
	// keeps the paper's 25 °C room. Fleet clusters use it to model
	// heterogeneous sites: a hot container farm boots closer to the trip
	// point than a chilled machine room, which the meta-scheduler's
	// thermal-headroom score sees.
	AmbientC float64
	// Link is the MPI fabric; defaults to netsim.GigabitEthernet().
	Link *netsim.Link
	// HPMPatch applies the U-Boot counter patch on all nodes.
	HPMPatch bool
	// StepPeriod is the node-model integration period in seconds
	// (default 0.1 s).
	StepPeriod float64
	// SyntheticSlots lifts the physical thermal.NumSlots ceiling on Nodes
	// for synthetic scale-out studies (e.g. large scheduler partitions):
	// nodes beyond the paper's enclosure reuse the slot thermal
	// environments modulo thermal.NumSlots.
	SyntheticSlots bool
	// LockStep reinstates the seed's fixed-period global integration
	// ticker, which Euler-steps every node every StepPeriod regardless of
	// activity. The default is demand-driven co-simulation: each node
	// integrates lazily when observed or when its inputs change, with a
	// per-node watchdog event guarding boot completions and thermal
	// trips. LockStep exists as the benchmark ablation and as the
	// bit-exact reproduction of the seed integration schedule.
	LockStep bool
}

// WithLockStep returns a copy of cfg with the legacy global-ticker
// integration enabled (the ablation baseline for the demand-driven
// physics benchmarks).
func WithLockStep(cfg Config) Config {
	cfg.LockStep = true
	return cfg
}

// Cluster is the assembled machine.
type Cluster struct {
	engine  *sim.Engine
	machine *soc.Machine
	nodes   []*node.Node
	index   map[string]int // hostname -> 0-based node index (= shard key)
	fabric  *netsim.Fabric

	nfs    *storage.NFS
	mounts map[string]*storage.Mount
	nvmes  map[string]*storage.NVMe

	stepPeriod float64
	lockStep   bool
	ambientC   float64 // configured machine-room inlet temperature
	ticker     *sim.Ticker
	onHalt     []func(hostname string)
	onBoot     []func(hostname string)

	// Demand-driven mode: one pending watchdog handle per node (zero when
	// the node needs none) plus its precomputed event name and callback —
	// replanning happens on every input change, so the per-node closure is
	// built once here rather than per reschedule.
	watches    []sim.Handle
	watchNames []string
	watchFns   []func(*sim.Engine)
}

// LoginHostname and MasterHostname name the service nodes.
const (
	LoginHostname  = "mclogin"
	MasterHostname = "mcmaster"
)

// New assembles a cluster on the given engine.
func New(engine *sim.Engine, cfg Config) (*Cluster, error) {
	if engine == nil {
		return nil, fmt.Errorf("cluster: nil engine")
	}
	n := cfg.Nodes
	if n == 0 {
		n = DefaultNodes
	}
	if n < 1 {
		return nil, fmt.Errorf("cluster: node count %d outside [1,%d]", n, thermal.NumSlots)
	}
	if n > thermal.NumSlots && !cfg.SyntheticSlots {
		return nil, fmt.Errorf("cluster: node count %d outside [1,%d] (set SyntheticSlots to scale beyond the enclosure)", n, thermal.NumSlots)
	}
	machine := cfg.Machine
	if machine == nil {
		machine = soc.FU740()
	}
	enc := thermal.DefaultEnclosure()
	if cfg.Enclosure != nil {
		enc = *cfg.Enclosure
	} else if cfg.AmbientC != 0 {
		if cfg.AmbientC < 0 || cfg.AmbientC >= thermal.TripTempC {
			return nil, fmt.Errorf("cluster: ambient %v °C outside [0,%v)", cfg.AmbientC, thermal.TripTempC)
		}
		enc.AmbientC = cfg.AmbientC
	}
	link := netsim.GigabitEthernet()
	if cfg.Link != nil {
		link = *cfg.Link
	}
	period := cfg.StepPeriod
	if period == 0 {
		period = 0.1
	}
	if period < 0 {
		return nil, fmt.Errorf("cluster: negative step period %v", period)
	}
	fabric, err := netsim.NewFabric(n, link)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Cluster{
		engine:     engine,
		machine:    machine,
		index:      make(map[string]int, n),
		fabric:     fabric,
		nfs:        storage.NewNFS(),
		mounts:     make(map[string]*storage.Mount, n),
		nvmes:      make(map[string]*storage.NVMe, n),
		stepPeriod: period,
		lockStep:   cfg.LockStep,
		ambientC:   enc.AmbientC,
	}
	// The integration step is the cluster's conservative lookahead floor:
	// after any input change a node's next transition deadline lies at
	// least one step out, so windows no wider than a step can never see a
	// mid-window watchdog land inside themselves. (Boot completions are
	// R1+R2 out — far beyond this bound — and already covered by it.)
	if err := engine.DeclareLookahead("cluster.step", period); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	for id := 1; id <= n; id++ {
		nd, err := node.New(node.Config{
			ID:        id,
			Slot:      (id - 1) % thermal.NumSlots,
			Machine:   machine,
			Enclosure: enc,
			HPMPatch:  cfg.HPMPatch,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.nodes = append(c.nodes, nd)
		c.index[nd.Hostname()] = id - 1
		mount, err := c.nfs.Mount(nd.Hostname())
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.mounts[nd.Hostname()] = mount
		c.nvmes[nd.Hostname()] = storage.NewNVMe()
	}
	for _, nd := range c.nodes {
		// Transitions surface in both modes: the lock-step ticker and the
		// demand-driven syncs both discover them inside node integration.
		// Both modes also install the engine clock and the integration
		// period, so observations and input changes are exact at their
		// own instants rather than quantized to the enclosing tick — the
		// two modes then walk identical Euler sequences and the LockStep
		// ablation differs only in integration scheduling cost.
		nd := nd
		nd.OnTransition(func(kind node.Transition, _ float64) { c.nodeTransition(nd, kind) })
		if err := nd.SetBaseStep(period); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		// The node clock routes through the engine's key-aware time: during
		// a window's parallel phase a demand-driven sync triggered on a shard
		// worker (a local phase transition observing its node) must see the
		// worker's event instant, not the serial loop's stale clock. Outside
		// parallel phases KeyNow IS the engine clock.
		key := nd.ID() - 1
		nd.SetClock(func() float64 { return engine.KeyNow(key) })
	}
	if !c.lockStep {
		c.watches = make([]sim.Handle, n)
		c.watchNames = make([]string, n)
		c.watchFns = make([]func(*sim.Engine), n)
		for i, nd := range c.nodes {
			i, nd := i, nd
			nd.OnInputChange(func() { c.replanWatch(i) })
			c.watchNames[i] = "cluster.watch." + nd.Hostname()
			c.watchFns[i] = func(e *sim.Engine) {
				c.watches[i] = sim.Handle{}
				nd.SyncTo(e.Now())
				c.replanWatch(i)
			}
		}
	}
	return c, nil
}

// nodeTransition reacts to a node state change discovered during
// integration, forwarding it to the registered callbacks and re-planning
// the node's watchdog.
func (c *Cluster) nodeTransition(nd *node.Node, kind node.Transition) {
	switch kind {
	case node.TransitionHalt:
		for _, fn := range c.onHalt {
			fn(nd.Hostname())
		}
	case node.TransitionBootComplete:
		for _, fn := range c.onBoot {
			fn(nd.Hostname())
		}
	}
	if !c.lockStep {
		c.replanWatch(nd.ID() - 1)
	}
}

// replanWatch re-schedules node i's watchdog event at its next
// integration deadline (boot completion, approach to the trip band), or
// cancels it when the node can idle indefinitely. Cancelled events are
// dropped from the engine's queue eagerly, so frequent re-planning does
// not accumulate garbage.
func (c *Cluster) replanWatch(i int) {
	if c.lockStep || c.watches == nil {
		return
	}
	nd := c.nodes[i]
	// Route through the key's scheduling port: a replan triggered by an
	// input change on a shard worker (a local phase transition mutating its
	// node) buffers the cancel+schedule into the worker's effect buffer for
	// the merge-ordered commit; on the serial loop the port is the engine
	// itself and this is the plain immediate path. Element i of c.watches is
	// only ever touched by node i's events, so worker writes are disjoint.
	port := c.engine.KeyPort(i)
	port.Cancel(c.watches[i])
	c.watches[i] = sim.Handle{}
	at := nd.NextDeadline()
	if math.IsInf(at, 1) {
		return
	}
	if now := port.Now(); at < now {
		at = now
	}
	// Watchdogs are deliberately plain (barrier) events: they exist to
	// integrate a node ACROSS a state transition, whose callbacks (halt ->
	// scheduler node-down, boot -> boot notification) are cross-shard edges
	// that must run on the serial loop with the window closed behind them.
	ev, err := port.ScheduleAt(at, c.watchNames[i], c.watchFns[i])
	if err != nil {
		// Unreachable: at is clamped to now and finite.
		panic(fmt.Sprintf("cluster: watch %s: %v", c.watchNames[i], err))
	}
	c.watches[i] = ev
}

// Engine returns the driving discrete-event engine.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// Machine returns the node SoC model.
func (c *Cluster) Machine() *soc.Machine { return c.machine }

// Fabric returns the MPI interconnect.
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// NFS returns the master node's file-system export.
func (c *Cluster) NFS() *storage.NFS { return c.nfs }

// NFSMount returns a compute node's NFS mount.
func (c *Cluster) NFSMount(hostname string) (*storage.Mount, error) {
	m, ok := c.mounts[hostname]
	if !ok {
		return nil, fmt.Errorf("cluster: no NFS mount for %q", hostname)
	}
	return m, nil
}

// NVMe returns a compute node's local SSD.
func (c *Cluster) NVMe(hostname string) (*storage.NVMe, error) {
	d, ok := c.nvmes[hostname]
	if !ok {
		return nil, fmt.Errorf("cluster: no NVMe for %q", hostname)
	}
	return d, nil
}

// Size returns the compute-node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the 0-based i-th compute node.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// NodeByHostname resolves a compute node by hostname.
func (c *Cluster) NodeByHostname(host string) (*node.Node, error) {
	if i, ok := c.index[host]; ok {
		return c.nodes[i], nil
	}
	return nil, fmt.Errorf("cluster: unknown host %q", host)
}

// NodeKeys maps hostnames to their shard keys (0-based node indexes).
// Unknown hosts are skipped: an event keyed for fewer nodes than it
// touches merely loses prefetch parallelism, never correctness. The
// workload executor uses this to mark phase-transition events shard-affine.
func (c *Cluster) NodeKeys(hosts []string) []int {
	keys := make([]int, 0, len(hosts))
	for _, h := range hosts {
		if i, ok := c.index[h]; ok {
			keys = append(keys, i)
		}
	}
	return keys
}

// PrepareNode is the engine's shard-state prefetcher: it integrates node
// key exactly to virtual time at, when safe. Runs on shard worker
// goroutines — distinct keys touch distinct node state, and the node
// re-checks transition safety, so this never fires a transition callback
// off the serial loop.
func (c *Cluster) PrepareNode(key int, at float64) {
	if key < 0 || key >= len(c.nodes) {
		return
	}
	c.nodes[key].PrepareSync(at)
}

// NodePrepareSafe is the engine's window-termination probe: whether node
// key can be prepared at instant at without reaching a state transition.
// Unknown keys are vacuously safe (there is no node state to guard).
func (c *Cluster) NodePrepareSafe(key int, at float64) bool {
	if key < 0 || key >= len(c.nodes) {
		return true
	}
	return c.nodes[key].PrepareSafe(at)
}

// Hostnames lists the compute-node hostnames in node order.
func (c *Cluster) Hostnames() []string {
	out := make([]string, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.Hostname()
	}
	return out
}

// Blades returns the blade composition: blade i holds the node indexes of
// its two boards (the last blade may hold one on odd-sized clusters).
func (c *Cluster) Blades() [][]int {
	var blades [][]int
	for i := 0; i < len(c.nodes); i += NodesPerBlade {
		end := i + NodesPerBlade
		if end > len(c.nodes) {
			end = len(c.nodes)
		}
		blade := make([]int, 0, NodesPerBlade)
		for j := i; j < end; j++ {
			blade = append(blade, j)
		}
		blades = append(blades, blade)
	}
	return blades
}

// OnNodeHalt registers a callback fired once per thermal halt (wired to
// the scheduler's NodeDown by the facade; the fault controller subscribes
// too). Callbacks fire in registration order.
func (c *Cluster) OnNodeHalt(fn func(hostname string)) { c.onHalt = append(c.onHalt, fn) }

// OnNodeBoot registers a callback fired when a node finishes booting (the
// event-driven boot-completion notification BootAndSettle waits on, and
// the fault controller's recovery path). Callbacks fire in registration
// order.
func (c *Cluster) OnNodeBoot(fn func(hostname string)) { c.onBoot = append(c.onBoot, fn) }

// ModelSteps sums the Euler substeps integrated across all nodes — the
// physics cost the demand-driven mode minimises relative to the LockStep
// ablation.
func (c *Cluster) ModelSteps() uint64 {
	var total uint64
	for _, nd := range c.nodes {
		total += nd.ModelSteps()
	}
	return total
}

// PowerOnAll presses every node's power button at the current virtual
// time. In lock-step mode it also starts the global integration ticker;
// in demand-driven mode the per-node power-on watchdogs (scheduled from
// the input-change notification) cover boot completion instead. Nodes
// finish booting after node.R1Duration + node.R2Duration seconds.
func (c *Cluster) PowerOnAll() error {
	now := c.engine.Now()
	for _, nd := range c.nodes {
		if nd.State() == node.StateOff {
			if err := nd.PowerOn(now); err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
		}
	}
	if !c.lockStep {
		return nil
	}
	return c.startTicker()
}

func (c *Cluster) startTicker() error {
	if c.ticker != nil {
		return nil
	}
	tk, err := sim.NewTicker(c.engine, c.engine.Now()+c.stepPeriod, c.stepPeriod, "cluster.step", c.step)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.ticker = tk
	return nil
}

// Stop halts all periodic integration activity (end of simulation): the
// global ticker in lock-step mode, the per-node watchdogs otherwise.
func (c *Cluster) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	for i := range c.watches {
		c.watches[i].Cancel()
		c.watches[i] = sim.Handle{}
	}
}

func (c *Cluster) step(now float64) {
	// Halts surface through the node transition callbacks.
	for _, nd := range c.nodes {
		nd.Step(now)
	}
}

// BootAndSettle powers on all nodes and advances the engine until every
// node reaches the running state (plus settle seconds of idle). The
// deadline is derived from each node's own boot-completion time rather
// than hard-coded region constants, so custom boot timings cannot
// silently miss it; the per-node boot notification (OnNodeBoot) fires as
// each node comes up.
func (c *Cluster) BootAndSettle(settle float64) error {
	if err := c.PowerOnAll(); err != nil {
		return err
	}
	latest := c.engine.Now()
	for _, nd := range c.nodes {
		if nd.State() == node.StateBooting && nd.BootDeadline() > latest {
			latest = nd.BootDeadline()
		}
	}
	// One extra integration period covers the lock-step ticker flipping
	// the state on the first tick at or after the deadline; demand-driven
	// runs keep the same horizon so both modes leave Boot at the same
	// virtual time (telemetry epochs must match across the ablation).
	if err := c.engine.RunUntil(latest + c.stepPeriod + settle); err != nil {
		return fmt.Errorf("cluster: boot: %w", err)
	}
	for _, nd := range c.nodes {
		if nd.State() != node.StateRunning {
			return fmt.Errorf("cluster: node %s state %s after boot", nd.Hostname(), nd.State())
		}
	}
	return nil
}

// RunWorkloadOn installs a workload activity on the named hosts.
func (c *Cluster) RunWorkloadOn(hosts []string, name string, act power.Activity, memBytes float64) error {
	for _, h := range hosts {
		nd, err := c.NodeByHostname(h)
		if err != nil {
			return err
		}
		if err := nd.SetWorkload(name, act, memBytes); err != nil {
			return err
		}
	}
	return nil
}

// ClearWorkloadOn clears workloads from the named hosts (halted nodes are
// skipped: their workload already ended).
func (c *Cluster) ClearWorkloadOn(hosts []string) {
	for _, h := range hosts {
		if nd, err := c.NodeByHostname(h); err == nil {
			nd.ClearWorkload()
		}
	}
}

// AmbientC returns the configured machine-room inlet temperature.
func (c *Cluster) AmbientC() float64 { return c.ambientC }

// ApplyAirflowMitigation removes the blade lids and increases the vertical
// spacing (the paper's fix after the node-7 thermal hazard), and returns
// halted nodes to service after a power cycle. The configured ambient
// temperature is preserved — taking the lid off does not re-chill the
// room.
func (c *Cluster) ApplyAirflowMitigation() error {
	enc := thermal.Enclosure{AmbientC: c.ambientC, LidOn: false}
	for _, nd := range c.nodes {
		if err := nd.SetEnclosure(enc); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		if nd.State() == node.StateHalted {
			nd.PowerOff()
			if err := nd.PowerOn(c.engine.Now()); err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
		}
	}
	return nil
}

// Placement builds an MPI rank placement using ranksPerNode tasks per node
// over the first nodes compute nodes (the paper runs 1 MPI task per
// physical core, i.e. 4 per node).
func (c *Cluster) Placement(nodes, ranksPerNode int) ([]int, error) {
	if nodes < 1 || nodes > len(c.nodes) {
		return nil, fmt.Errorf("cluster: placement over %d nodes, have %d", nodes, len(c.nodes))
	}
	if ranksPerNode < 1 {
		return nil, fmt.Errorf("cluster: ranks per node must be positive, got %d", ranksPerNode)
	}
	placement := make([]int, 0, nodes*ranksPerNode)
	for nd := 0; nd < nodes; nd++ {
		for r := 0; r < ranksPerNode; r++ {
			placement = append(placement, nd)
		}
	}
	return placement, nil
}
