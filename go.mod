module montecimone

go 1.21
